(* Per-domain span buffers.

   Each domain that opens a span lazily allocates its own buffer
   through [Domain.DLS], so recording a span never takes a lock and
   never shares a cache line with another domain -- the only global
   synchronization is a one-time registration of the buffer when a
   domain first traces.  Buffers outlive their domain: after the batch
   engine joins its workers, the exporter still sees every lane.

   Spans nest by construction ([with_] is a combinator, not a
   begin/end pair), so each buffer records a well-formed forest; the
   [depth] field and the child-duration accumulator let the exporter
   compute self times without re-deriving the tree. *)

type event = {
  name : string;
  attrs : (string * string) list;
  domain : int;  (* Domain.id of the recording domain *)
  depth : int;  (* 0 = root span of its lane *)
  ts : float;  (* monotonic start (Clock.monotonic); never steps *)
  dur : float;  (* seconds *)
  self : float;  (* [dur] minus time spent in child spans *)
}

type buffer = {
  buf_domain : int;
  mutable events : event list;  (* most recently closed first *)
  mutable event_count : int;  (* length of [events], kept incrementally *)
  mutable open_depth : int;
  mutable child_acc : float list;
      (* one accumulator per open span: total duration of its already
         closed children *)
}

(* 0 = keep everything (batch-CLI behavior).  A resident server sets a
   cap: each lane trims to the most recent [limit] events once it holds
   twice that, so memory stays bounded and /tracez serves a recent
   window.  Trimming is done by the owning domain, never concurrently. *)
let retention = Atomic.make 0

let set_retention = function
  | None -> Atomic.set retention 0
  | Some n ->
      if n < 1 then invalid_arg "Mae_obs.Span.set_retention: limit < 1";
      Atomic.set retention n

let truncate n l =
  let rec go acc n = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l

let registry_lock = Mutex.create ()
let buffers : buffer list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let buf =
        {
          buf_domain = (Domain.self () :> int);
          events = [];
          event_count = 0;
          open_depth = 0;
          child_acc = [];
        }
      in
      Mutex.lock registry_lock;
      buffers := buf :: !buffers;
      Mutex.unlock registry_lock;
      buf)

(* Monotonic: a wall-clock step mid-span must not produce negative or
   inflated durations.  Exporters needing epoch timestamps convert via
   Clock.wall_of_monotonic. *)
let now = Clock.monotonic

let with_ ?(attrs = []) ~name f =
  if not (Control.enabled ()) then f ()
  else begin
    let buf = Domain.DLS.get key in
    let start = now () in
    buf.open_depth <- buf.open_depth + 1;
    buf.child_acc <- 0. :: buf.child_acc;
    let close () =
      let dur = now () -. start in
      let children, outer =
        match buf.child_acc with
        | c :: rest -> (c, rest)
        | [] -> (0., [])  (* unbalanced only if [reset] raced a span *)
      in
      buf.open_depth <- buf.open_depth - 1;
      (* we are a closed child of the enclosing span, if any *)
      buf.child_acc <-
        (match outer with p :: up -> (p +. dur) :: up | [] -> []);
      buf.events <-
        {
          name;
          attrs;
          domain = buf.buf_domain;
          depth = buf.open_depth;
          ts = start;
          dur;
          self = Float.max 0. (dur -. children);
        }
        :: buf.events;
      buf.event_count <- buf.event_count + 1;
      let limit = Atomic.get retention in
      if limit > 0 && buf.event_count > 2 * limit then begin
        buf.events <- truncate limit buf.events;
        buf.event_count <- limit
      end
    in
    match f () with
    | v ->
        close ();
        v
    | exception e ->
        close ();
        raise e
  end

let events () =
  Mutex.lock registry_lock;
  let bufs = !buffers in
  Mutex.unlock registry_lock;
  List.concat_map (fun b -> List.rev b.events) bufs
  |> List.sort (fun a b ->
         match Int.compare a.domain b.domain with
         | 0 -> Float.compare a.ts b.ts
         | c -> c)

(* Spans recorded at or after a monotonic instant.  Lane lists are
   newest-closed first and every span starting at ts >= since closes
   after any span from earlier work, so a per-lane take-while is exact
   -- the scan stops at the first older span instead of walking the
   whole retention window.  Serve uses this to pull out exactly the
   span tree of the request that just finished. *)
let events_since since =
  Mutex.lock registry_lock;
  let bufs = !buffers in
  Mutex.unlock registry_lock;
  List.concat_map
    (fun b ->
      let rec take acc = function
        | e :: rest when e.ts >= since -> take (e :: acc) rest
        | _ -> acc
      in
      take [] b.events)
    bufs
  |> List.sort (fun a b ->
         match Int.compare a.domain b.domain with
         | 0 -> Float.compare a.ts b.ts
         | c -> c)

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun b ->
      b.events <- [];
      b.event_count <- 0;
      b.open_depth <- 0;
      b.child_acc <- [])
    !buffers;
  Mutex.unlock registry_lock
