(** Nested, per-domain timed spans.

    [with_ ~name f] times [f] and records a span into a buffer private
    to the calling domain -- recording takes no lock, so the batch
    engine's workers trace into independent lanes.  When telemetry is
    off ({!Control.enabled} [= false]) the combinator is one atomic
    read and a tail call.

    Spans nest lexically; a span closed while an exception unwinds is
    still recorded.  Buffers persist after their domain exits, so the
    exporter sees every lane of a finished batch. *)

type event = {
  name : string;
  attrs : (string * string) list;
  domain : int;  (** [Domain.id] of the recording domain *)
  depth : int;  (** 0 for the root span of its lane *)
  ts : float;  (** monotonic start ({!Clock.monotonic}); convert with
                   {!Clock.wall_of_monotonic} for display *)
  dur : float;  (** seconds *)
  self : float;  (** [dur] minus the time spent in child spans *)
}

val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  No-op (beyond one atomic read) when
    telemetry is disabled. *)

val events : unit -> event list
(** Every recorded span across all domains, sorted by domain then
    start time.  Call after in-flight estimation has finished (the
    engine joins its workers before returning). *)

val events_since : float -> event list
(** Spans whose start is at or after the given {!Clock.monotonic}
    instant, same ordering as {!events}.  Cost is proportional to the
    number of matching spans, not the retention window -- the serve
    plane calls this once per finished request for tail-based trace
    capture. *)

val reset : unit -> unit
(** Drop all recorded spans.  Do not call while spans are open on
    another domain. *)

val set_retention : int option -> unit
(** [Some n] bounds every lane to (roughly) its [n] most recent spans
    -- a resident server keeps tracing on without unbounded memory, and
    [/tracez] serves a recent window.  [None] (the default) keeps
    everything, the batch-CLI behavior.  Raises [Invalid_argument] on
    [n < 1]. *)
