(* Exporters over the recorded spans: Chrome trace-event JSON (load in
   chrome://tracing or https://ui.perfetto.dev, one lane per domain)
   and a plain-text flame summary aggregated by span name. *)

let us t = t *. 1e6

(* Extra span sources merged into the Chrome export only -- the
   runtime lens registers its GC phase events here, so flamegraph
   lanes show collector pauses interleaved with the pipeline spans
   without Trace depending on the consumer.  Providers must be cheap
   and must return [] when they have nothing (export time only, never
   on the hot path).  The flame summary deliberately excludes them:
   GC pauses happen *inside* pipeline spans, and folding them in
   would double-count self time. *)
let providers : (unit -> Span.event list) list Atomic.t = Atomic.make []

let register_provider f =
  let rec add () =
    let cur = Atomic.get providers in
    if not (Atomic.compare_and_set providers cur (f :: cur)) then add ()
  in
  add ()

let provider_events () =
  List.concat_map (fun f -> f ()) (Atomic.get providers)

(* Runtime-lens spans are named "gc.<phase>"; give them their own
   category so viewers (and the smoke gates) can tell collector time
   from pipeline time. *)
let cat_of (e : Span.event) =
  if String.length e.name >= 3 && String.equal (String.sub e.name 0 3) "gc."
  then "gc"
  else "mae"

let attr_args attrs =
  match attrs with
  | [] -> ""
  | attrs ->
      let fields =
        List.map
          (fun (k, v) -> Printf.sprintf "%s: %s" (Json.escape k) (Json.escape v))
          attrs
      in
      Printf.sprintf ", \"args\": {%s}" (String.concat ", " fields)

let to_chrome_string () =
  let events = Span.events () @ provider_events () in
  (* rebase timestamps so the trace starts near zero -- keeps the
     microsecond values small and the viewer timeline readable. *)
  let t0 =
    List.fold_left
      (fun acc (e : Span.event) -> Float.min acc e.ts)
      Float.infinity events
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let domains =
    List.sort_uniq Int.compare
      (List.map (fun (e : Span.event) -> e.domain) events)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  emit
    "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
     \"args\": {\"name\": \"mae\"}}";
  List.iter
    (fun d ->
      emit
        (Printf.sprintf
           "  {\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \
            \"thread_name\", \"args\": {\"name\": \"domain %d\"}}"
           d d))
    domains;
  List.iter
    (fun (e : Span.event) ->
      emit
        (Printf.sprintf
           "  {\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"name\": %s, \"cat\": \
            \"%s\", \"ts\": %.3f, \"dur\": %.3f%s}"
           e.domain (Json.escape e.name) (cat_of e)
           (us (e.ts -. t0))
           (us e.dur) (attr_args e.attrs)))
    events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome ~path =
  match open_out path with
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (to_chrome_string ()));
      Ok ()
  | exception Sys_error msg -> Error msg

(* --- flame summary --- *)

type flame_row = {
  span_name : string;
  calls : int;
  total_s : float;  (* sum of span durations (children included) *)
  self_s : float;  (* sum of span durations minus child time *)
}

let flame () =
  let table : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (e : Span.event) ->
      let calls, total, self =
        match Hashtbl.find_opt table e.name with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0., ref 0.) in
            Hashtbl.add table e.name cell;
            cell
      in
      incr calls;
      total := !total +. e.dur;
      self := !self +. e.self)
    (Span.events ());
  Hashtbl.fold
    (fun span_name (calls, total, self) acc ->
      { span_name; calls = !calls; total_s = !total; self_s = !self } :: acc)
    table []
  |> List.sort (fun a b -> Float.compare b.self_s a.self_s)

let flame_summary () =
  let rows = flame () in
  let grand_self = List.fold_left (fun acc r -> acc +. r.self_s) 0. rows in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %8s %12s %12s %7s\n" "span" "calls" "total (ms)"
       "self (ms)" "self%");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %8d %12.2f %12.2f %6.1f%%\n" r.span_name r.calls
           (r.total_s *. 1e3) (r.self_s *. 1e3)
           (if grand_self > 0. then 100. *. r.self_s /. grand_self else 0.)))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "%-28s %8s %12s %12.2f %6.1f%%\n" "(sum of self times)" ""
       "" (grand_self *. 1e3) 100.);
  Buffer.contents buf
