(** Exporters over the spans recorded by {!Span}.

    Call after the traced work has finished (the batch engine joins
    its worker domains before returning, so any point after
    [run_circuits] is safe). *)

val register_provider : (unit -> Span.event list) -> unit
(** Add an extra span source consulted by {!to_chrome_string} /
    {!write_chrome} at export time (the runtime lens registers its GC
    phase events here).  Providers must be cheap and return [] when
    idle.  Events named ["gc.*"] are exported under the ["gc"]
    category; everything else under ["mae"].  The flame summary does
    not include provider events (GC pauses land inside pipeline
    spans, so folding them in would double-count self time). *)

val to_chrome_string : unit -> string
(** The whole trace as Chrome trace-event JSON ("X" complete events,
    one [tid] lane per domain, timestamps rebased to the earliest
    span), merged with every registered provider's events.  Load in
    [chrome://tracing] or Perfetto. *)

val write_chrome : path:string -> (unit, string) result

type flame_row = {
  span_name : string;
  calls : int;
  total_s : float;  (** sum of durations, child spans included *)
  self_s : float;  (** sum of durations minus time in child spans *)
}

val flame : unit -> flame_row list
(** Aggregate by span name, hottest self-time first.  Self times are
    disjoint by construction, so they sum to the traced total -- the
    per-stage breakdown bench/profile.ml prints. *)

val flame_summary : unit -> string
(** {!flame} as an aligned text table with a self-time total row. *)
