let table_size = 4096

(* Built eagerly at module initialization (single-domain, before any
   [Domain.spawn] can happen) and never mutated afterwards, so reads are
   safe from any number of domains.  The previous [lazy] version could
   raise [Lazy.Undefined] when first forced from two domains at once. *)
let log_factorial_table =
  let t = Array.make table_size 0. in
  for n = 1 to table_size - 1 do
    t.(n) <- t.(n - 1) +. Float.log (Float.of_int n)
  done;
  t

(* Stirling's series with three correction terms; accurate to ~1e-10 for
   n >= table_size. *)
let stirling n =
  let x = Float.of_int n in
  ((x +. 0.5) *. Float.log x) -. x
  +. (0.5 *. Float.log (2. *. Float.pi))
  +. (1. /. (12. *. x))
  -. (1. /. (360. *. (x ** 3.)))

let log_factorial n =
  if n < 0 then invalid_arg "Comb.log_factorial: negative argument";
  if n < table_size then log_factorial_table.(n) else stirling n

let log_choose n k =
  if k < 0 || k > n then Float.neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let choose_int n k =
  if k < 0 || k > n then 0
  else begin
    let k = Stdlib.min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else begin
        let next = acc * (n - k + i) in
        if next < 0 || next / (n - k + i) <> acc then
          invalid_arg "Comb.choose_int: overflow";
        go (next / i) (i + 1)
      end
    in
    go 1 1
  end

let choose_slow n k =
  if k < 0 || k > n then 0.
  else
    (* The exact integer product is used for every argument it can
       represent: [choose_int] checks its own intermediates, so the
       threshold is the true 63-bit overflow limit rather than an
       arbitrary small-n cutoff (the old [n <= 30] cliff left e.g.
       C(31,15) to exp/log round-off).  Only genuinely huge binomials
       fall back to log space. *)
    match choose_int n k with
    | v -> Float.of_int v
    | exception Invalid_argument _ -> Float.exp (log_choose n k)

(* Every C(n,k) the estimator's hot loops reach -- rows and degrees are
   small integers -- served from one flat float table.  The table is
   filled through [choose_slow] itself, so a table lookup returns the
   exact bits the direct computation returns, and it is built eagerly at
   module initialization (single-domain) and never mutated, so reads
   are safe from any number of domains. *)
let choose_table_bound = 128

let choose_table =
  let t = Array.make (choose_table_bound * choose_table_bound) 0. in
  for n = 0 to choose_table_bound - 1 do
    for k = 0 to n do
      t.((n * choose_table_bound) + k) <- choose_slow n k
    done
  done;
  t

let choose n k =
  if k < 0 || k > n then 0.
  else if n < choose_table_bound then
    Array.unsafe_get choose_table ((n * choose_table_bound) + k)
  else choose_slow n k

let float_pow x n =
  if n < 0 then invalid_arg "Comb.float_pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then acc *. base else acc in
      go acc (base *. base) (n lsr 1)
    end
  in
  go 1. x n

(* Inclusion-exclusion: surj(d,i) = sum_{j=0}^{i} (-1)^j C(i,j) (i-j)^d *)
let surjections d i =
  if d < 0 || i < 0 then invalid_arg "Comb.surjections: negative argument";
  if i = 0 then (if d = 0 then 1. else 0.)
  else if d < i then 0.
  else begin
    let total = ref 0. in
    for j = 0 to i do
      let sign = if j land 1 = 0 then 1. else -1. in
      total := !total +. (sign *. choose i j *. float_pow (Float.of_int (i - j)) d)
    done;
    Float.max 0. !total
  end

(* The recurrence values are prefix-stable: b[1..m] do not depend on
   how far the row extends, so one row array serves every i <= imax
   with exactly the bits the per-i recurrence produces. *)
let paper_b_row ~k imax =
  if imax < 1 then invalid_arg "Comb.paper_b_row: imax must be >= 1";
  let b = Array.make (imax + 1) 0. in
  b.(1) <- 1.;
  for m = 2 to imax do
    let subtract = ref 0. in
    for j = 1 to m - 1 do
      subtract := !subtract +. (choose m j *. b.(j))
    done;
    b.(m) <- float_pow (Float.of_int m) k -. !subtract
  done;
  b

let paper_b ~k i =
  if i < 1 then invalid_arg "Comb.paper_b: i must be >= 1";
  (paper_b_row ~k i).(i)

let surjections_row d imax =
  if imax < 0 then invalid_arg "Comb.surjections_row: negative imax";
  Array.init (imax + 1) (fun i -> surjections d i)
