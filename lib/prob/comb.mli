(** Combinatorics for the estimator's probability models.

    All counting functions are evaluated in log space so that the
    expectation sums of equations (2)-(3) and (10)-(11) of the paper remain
    stable for nets with many components and modules with many nets. *)

val log_factorial : int -> float
(** [log_factorial n] = ln(n!).  Backed by an immutable table built at
    module initialization, so it is safe to call from any number of
    domains concurrently.  Raises [Invalid_argument] on a negative
    argument. *)

val log_choose : int -> int -> float
(** [log_choose n k] = ln(C(n,k)); [neg_infinity] when [k < 0 || k > n]. *)

val choose : int -> int -> float
(** C(n,k) as a float: the exact integer product whenever it fits in 63
    bits (every n up to ~61 for central k, much further for small k),
    exp/log only beyond that.  Arguments with [n < 128] -- every row
    and degree the estimator's hot loops reach -- are served from a
    flat float table filled by the direct computation at module
    initialization, so the fast path is one bounds check and an array
    load with bit-identical results. *)

val choose_int : int -> int -> int
(** Exact C(n,k) by the rising product; raises [Invalid_argument] if an
    intermediate would overflow a 63-bit integer. *)

val surjections : int -> int -> float
(** [surjections d i] counts the functions from a [d]-element set onto an
    [i]-element set (each of the [i] rows receives at least one of the [d]
    components).  Computed by inclusion-exclusion. *)

val surjections_row : int -> int -> float array
(** [surjections_row d imax] is the flat row [|surjections d 0; ...;
    surjections d imax|], so a distribution over [i = 1..imax] pays the
    inclusion-exclusion sums once per row rather than once per call. *)

val paper_b : k:int -> int -> float
(** [paper_b ~k i] is the paper's b[i] recurrence (equation 2):
    b[1] = 1, b[i] = i^k - sum_{j=1}^{i-1} C(i,j) * b[j].
    When [k >= i] this equals [surjections k i]. *)

val paper_b_row : k:int -> int -> float array
(** [paper_b_row ~k imax] is the recurrence row [b.(0..imax)]
    ([b.(0) = 0.]); the recurrence is prefix-stable, so
    [(paper_b_row ~k imax).(i) = paper_b ~k i] bit for bit for every
    [1 <= i <= imax], at a third of the repeated-call cost. *)

val float_pow : float -> int -> float
(** [float_pow x n] = x^n for n >= 0 by binary exponentiation. *)
