type t = { outcomes : int array; probs : float array }

let of_weights weights =
  if List.exists (fun (_, w) -> w < 0.) weights then
    invalid_arg "Dist.of_weights: negative weight";
  let weights = List.sort (fun (a, _) (b, _) -> Int.compare a b) weights in
  (* Duplicate outcomes carry one combined mass.  Kept separate, [prob]
     would report only the first entry's share while [expectation] and
     [sample] silently counted both. *)
  let weights =
    List.rev
      (List.fold_left
         (fun acc (x, w) ->
           match acc with
           | (y, wy) :: rest when y = x -> (y, wy +. w) :: rest
           | _ -> (x, w) :: acc)
         [] weights)
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weights in
  if total <= 0. then invalid_arg "Dist.of_weights: zero total mass";
  let outcomes = Array.of_list (List.map fst weights) in
  let probs = Array.of_list (List.map (fun (_, w) -> w /. total) weights) in
  { outcomes; probs }

(* The array-direct constructor for producers whose outcomes are already
   strictly increasing (the kernel builders: supports 1..n and 0..n).
   It performs the same left-to-right total fold and the same per-weight
   division as [of_weights] does after its sort/merge, so on such input
   the two constructors agree bit for bit -- [of_weights]'s sort is a
   no-op permutation and its merge never fires. *)
let of_sorted_weights ~outcomes ~weights =
  let n = Array.length outcomes in
  if n <> Array.length weights then
    invalid_arg "Dist.of_sorted_weights: length mismatch";
  if n = 0 then invalid_arg "Dist.of_sorted_weights: zero total mass";
  let total = ref 0. in
  for i = 0 to n - 1 do
    if weights.(i) < 0. then
      invalid_arg "Dist.of_sorted_weights: negative weight";
    if i > 0 && outcomes.(i) <= outcomes.(i - 1) then
      invalid_arg "Dist.of_sorted_weights: outcomes not strictly increasing";
    total := !total +. weights.(i)
  done;
  let total = !total in
  if total <= 0. then invalid_arg "Dist.of_sorted_weights: zero total mass";
  {
    outcomes = Array.copy outcomes;
    probs = Array.map (fun w -> w /. total) weights;
  }

let prob t x =
  let rec find i =
    if i >= Array.length t.outcomes then 0.
    else if t.outcomes.(i) = x then t.probs.(i)
    else find (i + 1)
  in
  find 0

let support t =
  Array.to_list t.outcomes
  |> List.filteri (fun i _ -> t.probs.(i) > 0.)

let total_mass_error t =
  Float.abs (1. -. Array.fold_left ( +. ) 0. t.probs)

let expectation t =
  let sum = ref 0. in
  Array.iteri (fun i x -> sum := !sum +. (Float.of_int x *. t.probs.(i))) t.outcomes;
  !sum

let expectation_ceil t =
  (* A slack keeps values such as 2.0000000000000004, produced by
     round-off in the probability sums, from being rounded up to 3.  It
     must scale with the accumulated numerical error of this particular
     distribution: a fixed 1e-9 also swallowed genuinely fractional
     expectations such as 2 + 4e-10 (a large-H binomial can sit that
     close to an integer), rounding them down.  The round-off in
     [expectation] is bounded by (mass error + one ulp per term) times
     the largest outcome magnitude. *)
  let e = expectation t in
  let max_abs =
    Array.fold_left
      (fun acc x -> Float.max acc (Float.abs (Float.of_int x)))
      1. t.outcomes
  in
  let slack =
    (total_mass_error t
    +. (Float.of_int (Array.length t.outcomes) *. Float.epsilon))
    *. max_abs
  in
  Float.to_int (Float.ceil (e -. slack))

let mode t =
  let best = ref 0 in
  Array.iteri (fun i _ -> if t.probs.(i) > t.probs.(!best) +. 1e-15 then best := i)
    t.outcomes;
  t.outcomes.(!best)

let sample t rng =
  let u = Rng.uniform rng in
  let rec go i acc =
    if i = Array.length t.outcomes - 1 then t.outcomes.(i)
    else begin
      let acc = acc +. t.probs.(i) in
      if u < acc then t.outcomes.(i) else go (i + 1) acc
    end
  in
  go 0 0.

let binomial ~n ~p =
  if p < 0. || p > 1. then invalid_arg "Dist.binomial: p outside [0,1]";
  if n < 0 then invalid_arg "Dist.binomial: negative n";
  let log_p = if p > 0. then Float.log p else Float.neg_infinity in
  let log_q = if p < 1. then Float.log (1. -. p) else Float.neg_infinity in
  let weight m =
    if (p = 0. && m > 0) || (p = 1. && m < n) then 0.
    else begin
      let lp = if m = 0 then 0. else Float.of_int m *. log_p in
      let lq = if n - m = 0 then 0. else Float.of_int (n - m) *. log_q in
      Float.exp (Comb.log_choose n m +. lp +. lq)
    end
  in
  of_sorted_weights
    ~outcomes:(Array.init (n + 1) Fun.id)
    ~weights:(Array.init (n + 1) weight)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i x -> Format.fprintf ppf "P(%d) = %.4f@ " x t.probs.(i))
    t.outcomes;
  Format.fprintf ppf "@]"
