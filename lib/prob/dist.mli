(** Finite discrete probability distributions over [1..n] (or any integer
    support), as produced by the paper's equations (2), (5), (8) and (10). *)

type t
(** A distribution: integer outcomes with non-negative weights. *)

val of_weights : (int * float) list -> t
(** Normalizes the weights; duplicate outcomes are merged (their weights
    add).  Raises [Invalid_argument] if any weight is negative or the
    total is zero. *)

val of_sorted_weights : outcomes:int array -> weights:float array -> t
(** The allocation-lean fast path for producers whose outcomes are
    already strictly increasing (the probability-kernel builders):
    identical normalization order to {!of_weights}, hence bit-identical
    results on such input, without the sort and list traffic.  Raises
    [Invalid_argument] on a length mismatch, non-increasing outcomes, a
    negative weight, or zero total mass.  The arrays are copied. *)

val prob : t -> int -> float
(** Probability of an outcome (0 for outcomes outside the support). *)

val support : t -> int list
(** Outcomes with non-zero probability, ascending. *)

val total_mass_error : t -> float
(** |1 - sum of probabilities| (should be ~0; exposed for tests). *)

val expectation : t -> float

val expectation_ceil : t -> int
(** Expectation rounded up to the next integer, as the paper prescribes for
    E(i) (eq. 3) and E(M) (eq. 11).  A slack proportional to the
    distribution's accumulated mass error absorbs round-off just above an
    integer without swallowing genuinely fractional expectations. *)

val mode : t -> int
(** Outcome with the highest probability (smallest such outcome on ties). *)

val sample : t -> Rng.t -> int

val binomial : n:int -> p:float -> t
(** The binomial distribution B(n, p) of equation (10). *)

val pp : Format.formatter -> t -> unit
