(* Domain-safe memo tables for the estimator's probability kernels.

   Every quantity here depends only on small integer keys -- (rows,
   degree) for the row-span distributions of equations (2)-(3), (net
   count, rows) for the feed-through binomial of equations (9)-(11) --
   so a batch of modules re-derives the same handful of distributions
   thousands of times.  The tables below compute each kernel once and
   share it across every circuit and every domain of the batch engine.

   Concurrency.  The tables are sharded: a key hashes to one of
   [Table.shard_count] shards, each holding an immutable bucket array
   published through an [Atomic].  The read path never locks -- it
   snapshots the shard's bucket array with one atomic load and scans an
   immutable association list, so the >98%-hit steady state of a batch
   run costs a hash and a few pointer chases per lookup.  Misses
   compute OUTSIDE any lock (the kernels are pure), then take the
   shard's mutex only to publish a copy-on-write successor array.  A
   racing domain that inserted the same key first wins; the loser's
   value is dropped and the drop counted as a race.  Published arrays
   and the pairs they hold are never mutated, so a reader can at worst
   see a slightly stale snapshot and recompute a value it would have
   found a moment later -- correctness never depends on winning.

   Accounting.  Hits are counted in domain-local storage ([Domain.DLS])
   so the hot path never writes a shared cache line.  The domain-local
   counts are folded into the process-wide [Mae_obs.Metrics] counters
   on every miss, on [stats], on [clear], and when a domain exits; the
   batch engine additionally flushes its workers at the end of every
   batch and reads {!local_counts} around each worker's run to
   attribute hits and misses to the batch that caused them. *)

type span_model = Paper | Exact

let enabled_flag = Atomic.make true

let hit_count =
  Mae_obs.Metrics.counter "mae_kernel_cache_hits_total"
    ~help:"Probability-kernel lookups served from the memo tables"

let miss_count =
  Mae_obs.Metrics.counter "mae_kernel_cache_misses_total"
    ~help:"Probability-kernel lookups that computed the kernel"

let race_count =
  Mae_obs.Metrics.counter "mae_kernel_cache_races_total"
    ~help:
      "Misses whose insert was dropped because another domain computed the \
       same kernel first"

(* --- domain-local hit/miss/race counting --- *)

type counts = { hits : int; misses : int; races : int }

type local = {
  mutable l_hits : int;
  mutable l_misses : int;
  mutable l_races : int;
  (* the prefix already folded into the global counters; tracking it
     separately keeps the local counts monotone (so the engine can take
     deltas around a batch) while still flushing each increment into the
     registry exactly once, even across [clear]'s counter resets *)
  mutable pushed_hits : int;
  mutable pushed_misses : int;
  mutable pushed_races : int;
}

let flush_record l =
  let dh = l.l_hits - l.pushed_hits
  and dm = l.l_misses - l.pushed_misses
  and dr = l.l_races - l.pushed_races in
  if dh <> 0 then Mae_obs.Metrics.add hit_count dh;
  if dm <> 0 then Mae_obs.Metrics.add miss_count dm;
  if dr <> 0 then Mae_obs.Metrics.add race_count dr;
  l.pushed_hits <- l.l_hits;
  l.pushed_misses <- l.l_misses;
  l.pushed_races <- l.l_races

let local_key =
  Domain.DLS.new_key (fun () ->
      let l =
        {
          l_hits = 0;
          l_misses = 0;
          l_races = 0;
          pushed_hits = 0;
          pushed_misses = 0;
          pushed_races = 0;
        }
      in
      (* a short-lived engine worker flushes whatever it counted when
         its domain terminates; the main domain flushes at process
         exit *)
      Domain.at_exit (fun () -> flush_record l);
      l)

let local_counts () =
  let l = Domain.DLS.get local_key in
  { hits = l.l_hits; misses = l.l_misses; races = l.l_races }

let flush_local () = flush_record (Domain.DLS.get local_key)

(* --- the sharded publish-once table --- *)

module Table = struct
  let shard_count = 16 (* power of two *)
  let shard_mask = shard_count - 1
  let initial_buckets = 16 (* power of two *)

  type ('k, 'v) shard = {
    lock : Mutex.t;
    (* the bucket array and every list cell in it are immutable once
       published; inserts publish a copy-on-write successor *)
    buckets : ('k * 'v) list array Atomic.t;
    count : int Atomic.t;
  }

  type ('k, 'v) t = { name : string; shards : ('k, 'v) shard array }

  (* every table registers itself so [clear]/[stats] span the gate-array
     shape table as well as the four kernel tables below *)
  type handle = {
    h_name : string;
    h_clear : unit -> unit;
    h_entries : unit -> int;
    h_shard_entries : unit -> int array;
  }

  let registry_lock = Mutex.create ()
  let registry : handle list ref = ref []

  let bucket_of h len = (h lsr 4) land (len - 1)

  let rec assoc_find key = function
    | [] -> None
    | (k, v) :: rest -> if k = key then Some v else assoc_find key rest

  let fresh_buckets () = Array.make initial_buckets []

  let shard_clear s =
    Mutex.lock s.lock;
    Atomic.set s.buckets (fresh_buckets ());
    Atomic.set s.count 0;
    Mutex.unlock s.lock

  let entries t =
    Array.fold_left (fun acc s -> acc + Atomic.get s.count) 0 t.shards

  let shard_entries t = Array.map (fun s -> Atomic.get s.count) t.shards

  let create ~name () =
    let t =
      {
        name;
        shards =
          Array.init shard_count (fun _ ->
              {
                lock = Mutex.create ();
                buckets = Atomic.make (fresh_buckets ());
                count = Atomic.make 0;
              });
      }
    in
    Mutex.lock registry_lock;
    registry :=
      {
        h_name = name;
        h_clear = (fun () -> Array.iter shard_clear t.shards);
        h_entries = (fun () -> entries t);
        h_shard_entries = (fun () -> shard_entries t);
      }
      :: !registry;
    Mutex.unlock registry_lock;
    t

  (* Publish key -> v unless some other domain already did; returns
     [true] when the insert was dropped (the race case). *)
  let insert shard h key v =
    Mutex.lock shard.lock;
    let b = Atomic.get shard.buckets in
    let len = Array.length b in
    let idx = bucket_of h len in
    match assoc_find key b.(idx) with
    | Some _ ->
        Mutex.unlock shard.lock;
        true
    | None ->
        let n = Atomic.get shard.count + 1 in
        let b' =
          if n > 2 * len then begin
            (* grow: rehash every entry into a doubled array *)
            let len' = 2 * len in
            let g = Array.make len' [] in
            Array.iter
              (List.iter (fun ((k, _) as pair) ->
                   let i = bucket_of (Hashtbl.hash k) len' in
                   g.(i) <- pair :: g.(i)))
              b;
            let i = bucket_of h len' in
            g.(i) <- (key, v) :: g.(i);
            g
          end
          else begin
            let c = Array.copy b in
            c.(idx) <- (key, v) :: c.(idx);
            c
          end
        in
        Atomic.set shard.count n;
        Atomic.set shard.buckets b';
        Mutex.unlock shard.lock;
        false

  let find_or_compute t key compute =
    if not (Atomic.get enabled_flag) then compute ()
    else begin
      let h = Hashtbl.hash key in
      let shard = Array.unsafe_get t.shards (h land shard_mask) in
      let b = Atomic.get shard.buckets in
      match assoc_find key b.(bucket_of h (Array.length b)) with
      | Some v ->
          let l = Domain.DLS.get local_key in
          l.l_hits <- l.l_hits + 1;
          v
      | None ->
          let v = compute () in
          let raced = insert shard h key v in
          let l = Domain.DLS.get local_key in
          l.l_misses <- l.l_misses + 1;
          if raced then l.l_races <- l.l_races + 1;
          (* misses are rare: keep the registry counters fresh here so a
             metrics scrape between batches sees recent traffic *)
          flush_record l;
          v
    end
end

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let span_table : (span_model * int * int, Dist.t) Table.t =
  Table.create ~name:"span" ()

let span_ceil_table : (span_model * int * int, int) Table.t =
  Table.create ~name:"span_ceil" ()

let feed_table : (int * int, Dist.t) Table.t = Table.create ~name:"feed" ()

let feed_ceil_table : (int * int, int) Table.t =
  Table.create ~name:"feed_ceil" ()

(* --- row-span distribution (equations 2-3) --- *)

let check_span ~rows ~degree =
  if rows < 1 then invalid_arg "Kernel_cache: rows < 1";
  if degree < 1 then invalid_arg "Kernel_cache: degree < 1"

let row_span_dist_uncached ~model ~rows ~degree =
  check_span ~rows ~degree;
  let support = Stdlib.min rows degree in
  let outcomes = Array.init support (fun j -> j + 1) in
  let weights =
    match model with
    | Paper ->
        (* weight(i) = C(n,i) * b_k(i); the common (1/n)^k factor cancels
           in the normalization performed by Dist.of_sorted_weights. *)
        let k = Stdlib.min rows degree in
        let b = Comb.paper_b_row ~k support in
        Array.init support (fun j -> Comb.choose rows (j + 1) *. b.(j + 1))
    | Exact ->
        let s = Comb.surjections_row degree support in
        Array.init support (fun j -> Comb.choose rows (j + 1) *. s.(j + 1))
  in
  Dist.of_sorted_weights ~outcomes ~weights

let row_span_dist ~model ~rows ~degree =
  check_span ~rows ~degree;
  Table.find_or_compute span_table (model, rows, degree) (fun () ->
      row_span_dist_uncached ~model ~rows ~degree)

let expected_span ~model ~rows ~degree =
  check_span ~rows ~degree;
  Table.find_or_compute span_ceil_table (model, rows, degree) (fun () ->
      Dist.expectation_ceil (row_span_dist ~model ~rows ~degree))

(* --- feed-throughs (equations 9-11) --- *)

let two_component_feed_prob ~rows =
  if rows < 1 then invalid_arg "Kernel_cache: rows < 1";
  let n = Float.of_int rows in
  let r = (n -. 1.) /. n in
  r *. r /. 2.

let feed_through_dist_uncached ~net_count ~rows =
  if net_count < 0 then invalid_arg "Kernel_cache: net_count < 0";
  Dist.binomial ~n:net_count ~p:(two_component_feed_prob ~rows)

let feed_through_dist ~net_count ~rows =
  if net_count < 0 then invalid_arg "Kernel_cache: net_count < 0";
  if rows < 1 then invalid_arg "Kernel_cache: rows < 1";
  Table.find_or_compute feed_table (net_count, rows) (fun () ->
      feed_through_dist_uncached ~net_count ~rows)

let expected_feed_throughs ~net_count ~rows =
  if net_count < 0 then invalid_arg "Kernel_cache: net_count < 0";
  if rows < 1 then invalid_arg "Kernel_cache: rows < 1";
  Table.find_or_compute feed_ceil_table (net_count, rows) (fun () ->
      Dist.expectation_ceil (feed_through_dist ~net_count ~rows))

(* --- warm-up --- *)

let precompute ~max_rows ~max_degree =
  if max_rows < 1 then invalid_arg "Kernel_cache.precompute: max_rows < 1";
  if max_degree < 1 then invalid_arg "Kernel_cache.precompute: max_degree < 1";
  List.iter
    (fun model ->
      for rows = 1 to max_rows do
        for degree = 1 to max_degree do
          ignore (row_span_dist ~model ~rows ~degree);
          ignore (expected_span ~model ~rows ~degree)
        done
      done)
    [ Paper; Exact ]

(* --- introspection --- *)

type stats = { hits : int; misses : int; races : int; entries : int }

let stats () =
  flush_local ();
  let entries =
    Mutex.lock Table.registry_lock;
    let handles = !Table.registry in
    Mutex.unlock Table.registry_lock;
    List.fold_left (fun acc h -> acc + h.Table.h_entries ()) 0 handles
  in
  {
    hits = Mae_obs.Metrics.counter_value hit_count;
    misses = Mae_obs.Metrics.counter_value miss_count;
    races = Mae_obs.Metrics.counter_value race_count;
    entries;
  }

let table_entries () =
  Mutex.lock Table.registry_lock;
  let handles = !Table.registry in
  Mutex.unlock Table.registry_lock;
  List.rev_map (fun h -> (h.Table.h_name, h.Table.h_shard_entries ())) handles

let clear () =
  (* fold this domain's counts in first, so the subsequent reset leaves
     the pushed prefix equal to the local counts and future deltas stay
     exact *)
  flush_local ();
  Mutex.lock Table.registry_lock;
  let handles = !Table.registry in
  Mutex.unlock Table.registry_lock;
  List.iter (fun h -> h.Table.h_clear ()) handles;
  Mae_obs.Metrics.reset_counter hit_count;
  Mae_obs.Metrics.reset_counter miss_count;
  Mae_obs.Metrics.reset_counter race_count
