(* Domain-safe memo tables for the estimator's probability kernels.

   Every quantity here depends only on small integer keys -- (rows,
   degree) for the row-span distributions of equations (2)-(3), (net
   count, rows) for the feed-through binomial of equations (9)-(11) --
   so a batch of modules re-derives the same handful of distributions
   thousands of times.  The tables below compute each kernel once and
   share it across every circuit and every domain of the batch engine.

   Concurrency: one mutex guards all tables.  Lookups hold it only for
   the hash-table probe; misses compute OUTSIDE the lock (the kernels
   are pure), then re-check before inserting.  Two domains racing on the
   same key may both compute it, but they compute identical values, so
   the loser's insert is simply dropped -- correctness never depends on
   winning the race.  Hits, misses and dropped (raced) inserts feed the
   Mae_obs metrics registry, where the engine and the CLI's
   --metrics-out read them. *)

type span_model = Paper | Exact

let enabled_flag = Atomic.make true

let hit_count =
  Mae_obs.Metrics.counter "mae_kernel_cache_hits_total"
    ~help:"Probability-kernel lookups served from the memo tables"

let miss_count =
  Mae_obs.Metrics.counter "mae_kernel_cache_misses_total"
    ~help:"Probability-kernel lookups that computed the kernel"

let race_count =
  Mae_obs.Metrics.counter "mae_kernel_cache_races_total"
    ~help:
      "Misses whose insert was dropped because another domain computed the \
       same kernel first"

let lock = Mutex.create ()

let span_table : (span_model * int * int, Dist.t) Hashtbl.t = Hashtbl.create 256
let span_ceil_table : (span_model * int * int, int) Hashtbl.t = Hashtbl.create 256
let feed_table : (int * int, Dist.t) Hashtbl.t = Hashtbl.create 256
let feed_ceil_table : (int * int, int) Hashtbl.t = Hashtbl.create 256

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let memo table key compute =
  if not (Atomic.get enabled_flag) then compute ()
  else begin
    Mutex.lock lock;
    match Hashtbl.find_opt table key with
    | Some v ->
        Mutex.unlock lock;
        Mae_obs.Metrics.incr hit_count;
        v
    | None ->
        Mutex.unlock lock;
        let v = compute () in
        Mutex.lock lock;
        let raced = Hashtbl.mem table key in
        if not raced then Hashtbl.add table key v;
        Mutex.unlock lock;
        Mae_obs.Metrics.incr miss_count;
        if raced then Mae_obs.Metrics.incr race_count;
        v
  end

(* --- row-span distribution (equations 2-3) --- *)

let check_span ~rows ~degree =
  if rows < 1 then invalid_arg "Kernel_cache: rows < 1";
  if degree < 1 then invalid_arg "Kernel_cache: degree < 1"

let row_span_dist_uncached ~model ~rows ~degree =
  check_span ~rows ~degree;
  let support = Stdlib.min rows degree in
  let weight =
    match model with
    | Paper ->
        (* weight(i) = C(n,i) * b_k(i); the common (1/n)^k factor cancels
           in the normalization performed by Dist.of_weights. *)
        let k = Stdlib.min rows degree in
        fun i -> Comb.choose rows i *. Comb.paper_b ~k i
    | Exact -> fun i -> Comb.choose rows i *. Comb.surjections degree i
  in
  Dist.of_weights (List.init support (fun j -> (j + 1, weight (j + 1))))

let row_span_dist ~model ~rows ~degree =
  check_span ~rows ~degree;
  memo span_table (model, rows, degree) (fun () ->
      row_span_dist_uncached ~model ~rows ~degree)

let expected_span ~model ~rows ~degree =
  check_span ~rows ~degree;
  memo span_ceil_table (model, rows, degree) (fun () ->
      Dist.expectation_ceil (row_span_dist ~model ~rows ~degree))

(* --- feed-throughs (equations 9-11) --- *)

let two_component_feed_prob ~rows =
  if rows < 1 then invalid_arg "Kernel_cache: rows < 1";
  let n = Float.of_int rows in
  let r = (n -. 1.) /. n in
  r *. r /. 2.

let feed_through_dist_uncached ~net_count ~rows =
  if net_count < 0 then invalid_arg "Kernel_cache: net_count < 0";
  Dist.binomial ~n:net_count ~p:(two_component_feed_prob ~rows)

let feed_through_dist ~net_count ~rows =
  if net_count < 0 then invalid_arg "Kernel_cache: net_count < 0";
  if rows < 1 then invalid_arg "Kernel_cache: rows < 1";
  memo feed_table (net_count, rows) (fun () ->
      feed_through_dist_uncached ~net_count ~rows)

let expected_feed_throughs ~net_count ~rows =
  if net_count < 0 then invalid_arg "Kernel_cache: net_count < 0";
  if rows < 1 then invalid_arg "Kernel_cache: rows < 1";
  memo feed_ceil_table (net_count, rows) (fun () ->
      Dist.expectation_ceil (feed_through_dist ~net_count ~rows))

(* --- introspection --- *)

type stats = { hits : int; misses : int; races : int; entries : int }

let stats () =
  Mutex.lock lock;
  let entries =
    Hashtbl.length span_table + Hashtbl.length span_ceil_table
    + Hashtbl.length feed_table + Hashtbl.length feed_ceil_table
  in
  Mutex.unlock lock;
  {
    hits = Mae_obs.Metrics.counter_value hit_count;
    misses = Mae_obs.Metrics.counter_value miss_count;
    races = Mae_obs.Metrics.counter_value race_count;
    entries;
  }

let clear () =
  Mutex.lock lock;
  Hashtbl.reset span_table;
  Hashtbl.reset span_ceil_table;
  Hashtbl.reset feed_table;
  Hashtbl.reset feed_ceil_table;
  Mutex.unlock lock;
  Mae_obs.Metrics.reset_counter hit_count;
  Mae_obs.Metrics.reset_counter miss_count;
  Mae_obs.Metrics.reset_counter race_count
