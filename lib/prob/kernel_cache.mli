(** Domain-safe memo tables for the estimator's probability kernels.

    The row-span distribution of equations (2)-(3) depends only on
    [(rows, degree)], and the feed-through binomial of equations
    (9)-(11) only on [(net_count, rows)], so a batch of modules
    re-derives the same handful of distributions thousands of times.
    This cache computes each kernel once and shares the resulting
    immutable {!Dist.t} across circuits and across the domains of the
    batch engine ({!Mae_engine}).

    The tables are sharded 16 ways; each shard publishes an immutable
    bucket array through an [Atomic], so lookups that hit never take a
    lock -- one atomic snapshot and an association-list scan.  Misses
    compute the (pure, deterministic) kernel outside any lock and
    publish a copy-on-write successor under the shard's mutex.  Two
    domains racing on the same key may both compute it; one result wins
    the insert, the loser's drop is counted as a race, and both callers
    receive a correct value.

    All entry points may be called concurrently from any number of
    domains. *)

type span_model = Paper | Exact
(** [Paper] is the equation-(2) exponent heuristic (k = min(n, D));
    [Exact] is the exact occupancy distribution via surjection counts.
    Mirrors [Mae.Config.row_span_model] without depending on it. *)

(** {1 Row-span distribution (equations 2-3)} *)

val row_span_dist : model:span_model -> rows:int -> degree:int -> Dist.t
(** Distribution of the number of rows spanned by a net with [degree]
    components over [rows] rows.  Cached.  Raises [Invalid_argument] if
    [rows < 1] or [degree < 1]. *)

val row_span_dist_uncached :
  model:span_model -> rows:int -> degree:int -> Dist.t
(** Same distribution, always computed afresh; the reference the cache
    is property-tested against. *)

val expected_span : model:span_model -> rows:int -> degree:int -> int
(** Equation (3): E(i) rounded up.  Cached. *)

(** {1 Feed-throughs (equations 9-11)} *)

val two_component_feed_prob : rows:int -> float
(** Equation (9): ((rows - 1) / rows)^2 / 2.  Pure arithmetic, never
    cached. *)

val feed_through_dist : net_count:int -> rows:int -> Dist.t
(** Equation (10): B(net_count, {!two_component_feed_prob}).  Cached. *)

val feed_through_dist_uncached : net_count:int -> rows:int -> Dist.t

val expected_feed_throughs : net_count:int -> rows:int -> int
(** Equation (11): E(M) rounded up.  Cached. *)

val precompute : max_rows:int -> max_degree:int -> unit
(** Warm the span tables for every [(model, rows, degree)] with
    [rows <= max_rows] and [degree <= max_degree], so a latency-critical
    consumer (the serve daemon) can pay every kernel miss up front.
    Raises [Invalid_argument] if either bound is < 1. *)

(** {1 Generic sharded tables}

    The same publish-once sharded structure, for other pure
    per-key computations that want to share [clear]/[set_enabled]/
    [stats] with the kernel tables (the gate-array shape search keys
    one by its small integer domain). *)

module Table : sig
  type ('k, 'v) t

  val create : name:string -> unit -> ('k, 'v) t
  (** Create a table and register it with the cache-wide {!clear},
      {!stats} and {!table_entries}.  Intended for a handful of
      module-initialization-time tables, not for dynamic creation:
      registered tables are never unregistered.  Keys are compared with
      structural equality and hashed with [Hashtbl.hash]. *)

  val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
  (** Lock-free lookup; on a miss, run the thunk outside any lock and
      publish the result unless a racing domain already did (the
      race-tolerant miss protocol -- the thunk must be pure).  When the
      cache is disabled ({!set_enabled}), always runs the thunk. *)

  val entries : ('k, 'v) t -> int
  val shard_entries : ('k, 'v) t -> int array
end

(** {1 Introspection and control} *)

type counts = { hits : int; misses : int; races : int }

val local_counts : unit -> counts
(** This domain's cumulative lookup counts, monotone over the domain's
    lifetime and untouched by {!clear}.  The batch engine reads them
    before and after a worker's run: the difference is exactly the
    worker's traffic, immune to concurrent batches on other domains. *)

val flush_local : unit -> unit
(** Fold this domain's not-yet-flushed counts into the process-wide
    [mae_kernel_cache_*] registry counters.  Misses flush implicitly;
    long-lived hit-only workers (the engine's pool domains) call this at
    the end of every batch so {!stats} stays exact between batches. *)

type stats = { hits : int; misses : int; races : int; entries : int }

val stats : unit -> stats
(** Cumulative hit/miss/race counters (since start or last {!clear})
    and the current number of resident entries across all tables.
    [races] counts misses whose insert was dropped because another
    domain computed the same kernel concurrently.  The counters live in
    the {!Mae_obs.Metrics} registry as [mae_kernel_cache_hits_total],
    [mae_kernel_cache_misses_total] and [mae_kernel_cache_races_total],
    so a metrics dump sees the same numbers.  Flushes the calling
    domain first; counts from another domain mid-batch appear once that
    domain misses, finishes its batch, or exits. *)

val table_entries : unit -> (string * int array) list
(** Per-table, per-shard resident entry counts (diagnostics). *)

val clear : unit -> unit
(** Drop every entry and reset the counters.  Do not call concurrently
    with estimation work. *)

val set_enabled : bool -> unit
(** Benchmarking escape hatch: when disabled, every lookup recomputes
    and the tables are left untouched.  Flip only while no estimation
    is in flight. *)

val enabled : unit -> bool
