(** Domain-safe memo tables for the estimator's probability kernels.

    The row-span distribution of equations (2)-(3) depends only on
    [(rows, degree)], and the feed-through binomial of equations
    (9)-(11) only on [(net_count, rows)], so a batch of modules
    re-derives the same handful of distributions thousands of times.
    This cache computes each kernel once and shares the resulting
    immutable {!Dist.t} across circuits and across the domains of the
    batch engine ({!Mae_engine}).

    All entry points may be called concurrently from any number of
    domains.  Two domains racing on the same key may both compute the
    (pure, deterministic) kernel; one result wins the insert and both
    callers receive a correct value. *)

type span_model = Paper | Exact
(** [Paper] is the equation-(2) exponent heuristic (k = min(n, D));
    [Exact] is the exact occupancy distribution via surjection counts.
    Mirrors [Mae.Config.row_span_model] without depending on it. *)

(** {1 Row-span distribution (equations 2-3)} *)

val row_span_dist : model:span_model -> rows:int -> degree:int -> Dist.t
(** Distribution of the number of rows spanned by a net with [degree]
    components over [rows] rows.  Cached.  Raises [Invalid_argument] if
    [rows < 1] or [degree < 1]. *)

val row_span_dist_uncached :
  model:span_model -> rows:int -> degree:int -> Dist.t
(** Same distribution, always computed afresh; the reference the cache
    is property-tested against. *)

val expected_span : model:span_model -> rows:int -> degree:int -> int
(** Equation (3): E(i) rounded up.  Cached. *)

(** {1 Feed-throughs (equations 9-11)} *)

val two_component_feed_prob : rows:int -> float
(** Equation (9): ((rows - 1) / rows)^2 / 2.  Pure arithmetic, never
    cached. *)

val feed_through_dist : net_count:int -> rows:int -> Dist.t
(** Equation (10): B(net_count, {!two_component_feed_prob}).  Cached. *)

val feed_through_dist_uncached : net_count:int -> rows:int -> Dist.t

val expected_feed_throughs : net_count:int -> rows:int -> int
(** Equation (11): E(M) rounded up.  Cached. *)

(** {1 Introspection and control} *)

type stats = { hits : int; misses : int; races : int; entries : int }

val stats : unit -> stats
(** Cumulative hit/miss/race counters (since start or last {!clear})
    and the current number of resident entries across all tables.
    [races] counts misses whose insert was dropped because another
    domain computed the same kernel concurrently.  The counters live in
    the {!Mae_obs.Metrics} registry as [mae_kernel_cache_hits_total],
    [mae_kernel_cache_misses_total] and [mae_kernel_cache_races_total],
    so a metrics dump sees the same numbers. *)

val clear : unit -> unit
(** Drop every entry and reset the counters.  Do not call concurrently
    with estimation work. *)

val set_enabled : bool -> unit
(** Benchmarking escape hatch: when disabled, every lookup recomputes
    and the tables are left untouched.  Flip only while no estimation
    is in flight. *)

val enabled : unit -> bool
