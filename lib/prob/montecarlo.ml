type placement_stats = {
  rows_used : Dist.t;
  feed_through : float array;
}

type counts = {
  trials : int;
  rows : int;
  degree : int;
  span_counts : int array;
  feed_counts : int array;
}

let simulate_counts ~rng ~trials ~rows ~degree =
  if rows < 1 then invalid_arg "Montecarlo.simulate_counts: rows < 1";
  if degree < 1 then invalid_arg "Montecarlo.simulate_counts: degree < 1";
  if trials < 1 then invalid_arg "Montecarlo.simulate_counts: trials < 1";
  let span_counts = Array.make (rows + 1) 0 in
  let feed_counts = Array.make rows 0 in
  let occupied = Array.make rows false in
  for _ = 1 to trials do
    Array.fill occupied 0 rows false;
    let lowest = ref rows and highest = ref (-1) in
    for _ = 1 to degree do
      let r = Rng.int rng rows in
      occupied.(r) <- true;
      if r < !lowest then lowest := r;
      if r > !highest then highest := r
    done;
    let span = ref 0 in
    for r = 0 to rows - 1 do
      if occupied.(r) then incr span
    done;
    span_counts.(!span) <- span_counts.(!span) + 1;
    (* Row i receives a feed-through when some component is strictly above
       and some strictly below, i.e. lowest < i < highest. *)
    for r = !lowest + 1 to !highest - 1 do
      feed_counts.(r) <- feed_counts.(r) + 1
    done
  done;
  { trials; rows; degree; span_counts; feed_counts }

let stats_of_counts c =
  let weights =
    List.init c.rows (fun i -> (i + 1, Float.of_int c.span_counts.(i + 1)))
  in
  let rows_used = Dist.of_weights weights in
  let feed_through =
    Array.map (fun n -> Float.of_int n /. Float.of_int c.trials) c.feed_counts
  in
  { rows_used; feed_through }

let simulate_net ~rng ~trials ~rows ~degree =
  stats_of_counts (simulate_counts ~rng ~trials ~rows ~degree)

let empirical_rows_used ~rng ~trials ~rows ~degree =
  (simulate_net ~rng ~trials ~rows ~degree).rows_used

let span_interval c ~z ~span =
  if span < 0 || span > c.rows then
    invalid_arg "Montecarlo.span_interval: span out of range";
  Stats.wilson_interval ~successes:c.span_counts.(span) ~trials:c.trials ~z

let feed_interval c ~z ~row =
  if row < 1 || row > c.rows then
    invalid_arg "Montecarlo.feed_interval: row out of range";
  Stats.wilson_interval ~successes:c.feed_counts.(row - 1) ~trials:c.trials ~z

(* The same strict-improvement tolerance as [Feedthrough.argmax_row]:
   the two equal central rows of an even row count may differ by one ulp
   of round-off in the empirical frequencies, and a plain [>] then picks
   whichever of the pair the noise favours; requiring an improvement
   beyond 1e-15 keeps ties (and ulp-level near-ties) on the lower row,
   matching the closed-form argmax. *)
let argmax_feed_through stats =
  let best = ref 0 in
  Array.iteri
    (fun i p -> if p > stats.feed_through.(!best) +. 1e-15 then best := i)
    stats.feed_through;
  !best + 1
