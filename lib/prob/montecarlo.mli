(** Monte-Carlo verification of the paper's placement-probability models.

    Section 4.1 supports two claims with "numerical simulation results":
    that the central row has the largest probability of containing a
    feed-through regardless of the net degree D, and that the row-span
    distribution of equation (2) models random placement.  This module
    re-runs those simulations: components of a net are dropped uniformly at
    random into [n] rows and the empirical statistics are collected. *)

type placement_stats = {
  rows_used : Dist.t;  (** empirical distribution of the row span *)
  feed_through : float array;
      (** [feed_through.(i)] for i in [0, rows): empirical probability that
          the net contributes a feed-through to row i+1.  Following
          equation (5), the event is: at least one component lies in a row
          strictly above row i+1 and at least one in a row strictly below
          it (components inside the row itself are permitted; the wire must
          still cross the row to join the two sides). *)
}

type counts = {
  trials : int;
  rows : int;
  degree : int;
  span_counts : int array;
      (** [span_counts.(s)] placements spanned exactly [s] rows
          ([span_counts.(0)] is always 0); length [rows + 1]. *)
  feed_counts : int array;
      (** [feed_counts.(i)] placements that fed through row i+1;
          length [rows]. *)
}
(** Raw tallies, for confidence-interval work: the differential harness
    needs the integer counts, not just the normalized frequencies. *)

val simulate_counts :
  rng:Rng.t -> trials:int -> rows:int -> degree:int -> counts
(** Drop [degree] components into [rows] rows uniformly, [trials] times,
    and return the raw tallies.  Raises [Invalid_argument] when
    [rows < 1], [degree < 1] or [trials < 1]. *)

val stats_of_counts : counts -> placement_stats
(** Normalize raw tallies into empirical frequencies. *)

val simulate_net : rng:Rng.t -> trials:int -> rows:int -> degree:int -> placement_stats
(** [stats_of_counts (simulate_counts ...)]. *)

val empirical_rows_used : rng:Rng.t -> trials:int -> rows:int -> degree:int -> Dist.t
(** Shorthand for [(simulate_net ...).rows_used]. *)

val span_interval : counts -> z:float -> span:int -> float * float
(** {!Stats.wilson_interval} for P(span = [span]).  Raises
    [Invalid_argument] when [span] is outside [0, rows]. *)

val feed_interval : counts -> z:float -> row:int -> float * float
(** {!Stats.wilson_interval} for the feed-through probability of the
    1-based [row].  Raises [Invalid_argument] when [row] is outside
    [1, rows]. *)

val argmax_feed_through : placement_stats -> int
(** 1-based index of the row with the highest empirical feed-through
    probability.  A candidate must beat the incumbent by more than 1e-15
    — the same tie tolerance as [Feedthrough.argmax_row] — so the two
    equal central rows of an even row count resolve to the lower one on
    both sides of the differential comparison. *)
