let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ :: _ -> ()

let mean xs =
  require_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0. xs /. Float.of_int (List.length xs)

let variance xs =
  require_nonempty "Stats.variance" xs;
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
  sq /. Float.of_int (List.length xs)

let stddev xs = Float.sqrt (variance xs)

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (Float.infinity, Float.neg_infinity)
    xs

let median xs =
  require_nonempty "Stats.median" xs;
  let sorted = List.sort Float.compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n land 1 = 1 then arr.(n / 2)
  else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let mean_abs xs = mean (List.map Float.abs xs)

let relative_error ~estimated ~real =
  if real = 0. then invalid_arg "Stats.relative_error: real value is zero";
  (estimated -. real) /. real

let wilson_interval ~successes ~trials ~z =
  if trials < 1 then invalid_arg "Stats.wilson_interval: trials < 1";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_interval: successes outside [0, trials]";
  if z <= 0. then invalid_arg "Stats.wilson_interval: z <= 0";
  let n = Float.of_int trials in
  let p = Float.of_int successes /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let center = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z *. Float.sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) /. denom
  in
  (Float.max 0. (center -. half), Float.min 1. (center +. half))

let histogram ~bins xs =
  require_nonempty "Stats.histogram" xs;
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  let lo, hi = min_max xs in
  let span = if hi > lo then hi -. lo else 1. in
  let width = span /. Float.of_int bins in
  let counts = Array.make bins 0 in
  let place x =
    let i = Float.to_int ((x -. lo) /. width) in
    let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
    counts.(i) <- counts.(i) + 1
  in
  List.iter place xs;
  Array.mapi
    (fun i c ->
      let b_lo = lo +. (Float.of_int i *. width) in
      (b_lo, b_lo +. width, c))
    counts
