(** Small descriptive-statistics helpers used by the benchmark harness to
    summarize estimation errors (the paper quotes error ranges and a mean
    absolute error over its experiments). *)

val mean : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val variance : float list -> float
(** Population variance; raises [Invalid_argument] on the empty list. *)

val stddev : float list -> float

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)

val median : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val mean_abs : float list -> float
(** Mean of absolute values: the paper's "average estimation error". *)

val relative_error : estimated:float -> real:float -> float
(** (estimated - real) / real.  Positive means overestimate.  Raises
    [Invalid_argument] if [real = 0]. *)

val wilson_interval :
  successes:int -> trials:int -> z:float -> float * float
(** Wilson score interval for a binomial proportion: the [z]-sigma
    confidence bounds on the true success probability after observing
    [successes] out of [trials].  Clamped to [0, 1].  Unlike the Wald
    interval it stays meaningful at 0 or [trials] successes, which the
    differential harness hits routinely on rare outcomes.  Raises
    [Invalid_argument] when [trials < 1], [successes] is outside
    [0, trials] or [z <= 0]. *)

val histogram : bins:int -> float list -> (float * float * int) array
(** [(lo, hi, count)] per bin over the data range; raises
    [Invalid_argument] on an empty list or [bins < 1]. *)
