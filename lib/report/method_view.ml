type entry = {
  name : string;
  kind : string;
  ok : bool;
  area : float;
  width : float;
  height : float;
  aspect : float;
  note : string;
}

let render_table ~module_name entries =
  let t =
    Table.create
      ~columns:
        [
          ("method", Table.Left); ("kind", Table.Left); ("area L^2", Table.Right);
          ("width L", Table.Right); ("height L", Table.Right);
          ("aspect", Table.Right); ("notes", Table.Left);
        ]
  in
  List.iter
    (fun e ->
      if e.ok then
        Table.add_row t
          [
            e.name; e.kind; Printf.sprintf "%.0f" e.area;
            Printf.sprintf "%.0f" e.width; Printf.sprintf "%.0f" e.height;
            Printf.sprintf "%.2f" e.aspect; e.note;
          ]
      else Table.add_row t [ e.name; "-"; "-"; "-"; "-"; "-"; e.note ])
    entries;
  Printf.sprintf "%s\n%s" module_name (Table.render t)

(* One outline per successful footprint, bottoms aligned, separated by a
   gap proportional to the widest box so the drawing reads at any scale. *)
let render_svg ?pixel_width ~module_name entries =
  let boxes =
    List.filter (fun e -> e.ok && e.width > 0. && e.height > 0.) entries
  in
  match boxes with
  | [] -> Error (module_name ^ ": no successful methodology to draw")
  | boxes ->
      let max_w =
        List.fold_left (fun acc e -> Float.max acc e.width) 0. boxes
      in
      let gap = 0.08 *. max_w in
      let total_width =
        List.fold_left (fun acc e -> acc +. e.width +. gap) 0. boxes -. gap
      in
      let total_height =
        List.fold_left (fun acc e -> Float.max acc e.height) 0. boxes
      in
      let items, _ =
        List.fold_left
          (fun (items, x) e ->
            let item =
              {
                Svg.rect = (x, 0., e.width, e.height);
                style = Svg.cell_style;
                label = Some e.name;
              }
            in
            (item :: items, x +. e.width +. gap))
          ([], 0.) boxes
      in
      Ok
        (Svg.render ?pixel_width ~width:total_width ~height:total_height
           (List.rev items))
