(** Side-by-side rendering of one module's per-methodology results.

    The registry ({!Mae.Methodology}) makes N estimators run over the
    same module; this view puts their answers next to each other — an
    ASCII table for the terminal and a footprint SVG that draws every
    successful outcome's bounding box to a common scale.

    [mae_report] stays dependency-light (fmt only), so callers extract
    the numbers from their [module_report] into {!entry} values first;
    see [bin/mae_cli.ml] for the canonical extraction. *)

type entry = {
  name : string;  (** registry name, e.g. ["fullcustom-exact"] *)
  kind : string;  (** outcome kind tag; [""] for failures *)
  ok : bool;
  area : float;  (** lambda^2; meaningless when [not ok] *)
  width : float;  (** lambda *)
  height : float;  (** lambda *)
  aspect : float;  (** width / height *)
  note : string;  (** rows/sites detail, or the error text when [not ok] *)
}

val render_table : module_name:string -> entry list -> string
(** A fixed-width comparison table (one row per methodology), titled
    with the module name.  Failed methodologies keep their row, with the
    error text in the note column. *)

val render_svg :
  ?pixel_width:int -> module_name:string -> entry list -> (string, string) result
(** The successful entries' footprints side by side, drawn to one scale
    and labelled by methodology name.  [Error] when no entry succeeded
    (there is nothing to draw). *)
