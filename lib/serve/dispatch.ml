(* Dispatch: the bounded submission queue in front of the engine.

   Every request-plane frame becomes a job in one FIFO queue, so each
   connection's responses come back in its own arrival order even when
   requests from many connections interleave.  A tick takes a queue
   prefix, coalesces the estimate jobs in it into engine batches (one
   {!Mae_engine.run_grouped} fan-out per method selection -- one pool
   submission instead of one per request), and answers every job of
   the prefix with the full per-request bookkeeping: seq/rid, latency
   histogram + sketch exemplar, SLO events, tail capture, the access
   log record, the response write.

   Admission control lives at the front door: when the queued estimate
   count is at the watermark, a new estimate is answered 503 +
   Retry-After without touching the engine.  Shedding burns neither
   SLO -- it is the server protecting its objectives, not missing
   them -- but it does count into requests_total/failed and its own
   shed counter, so overload is visible on every dashboard. *)

module Json = Mae_obs.Json
module Log = Mae_obs.Log
module Metrics = Mae_obs.Metrics

(* --- registry instruments (always live, like the engine's) --- *)

let requests_total =
  Metrics.counter "mae_serve_requests_total"
    ~help:"Estimation requests received (one JSON line each)"

let requests_ok =
  Metrics.counter "mae_serve_requests_ok_total"
    ~help:"Requests answered with ok:true (every module estimated)"

let requests_failed =
  Metrics.counter "mae_serve_requests_failed_total"
    ~help:"Requests answered with ok:false (parse, protocol or module error)"

let requests_shed =
  Metrics.counter "mae_serve_requests_shed_total"
    ~help:
      "Estimation requests shed by admission control (queue at the \
       watermark; answered 503 + Retry-After without estimation)"

let queue_depth_gauge =
  Metrics.gauge "mae_serve_queue_depth"
    ~help:"Jobs waiting in the dispatch queue right now"

let batch_requests =
  Metrics.histogram "mae_serve_batch_requests"
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
    ~help:"Requests coalesced into one engine batch"

let request_latency =
  Metrics.histogram "mae_serve_request_seconds"
    ~help:"Per-request service latency (receipt of a line to its response)"

(* The same samples as the histogram, without bucket-edge
   quantization; exemplars carry the request ids of the slowest
   requests so /metrics cross-links to /tracez. *)
let request_latency_sketch =
  Mae_obs.Sketch.create "mae_serve_request_seconds_summary"
    ~help:"Per-request service latency quantiles (GK sketch)"

(* --- response assembly (shared by the solo and coalesced paths) --- *)

(* One JSON value per methodology outcome: the shared dimensions plus a
   few kind-specific extras. *)
let outcome_json (o : Mae.Methodology.outcome) =
  let dims = Mae.Methodology.dims o in
  let base =
    [
      ("ok", Json.Bool true);
      ("kind", Json.String (Mae.Methodology.kind o));
      ("area", Json.Number dims.Mae.Methodology.area);
      ("width", Json.Number dims.Mae.Methodology.width);
      ("height", Json.Number dims.Mae.Methodology.height);
    ]
  in
  let extra =
    match o with
    | Mae.Methodology.Stdcell { auto; sweep } ->
        [
          ("rows", Json.Number (Float.of_int auto.Mae.Estimate.rows));
          ( "sweep_rows",
            Json.Array
              (List.map
                 (fun (s : Mae.Estimate.stdcell) ->
                   Json.Number (Float.of_int s.Mae.Estimate.rows))
                 sweep) );
        ]
    | Mae.Methodology.Gatearray g ->
        [
          ("sites", Json.Number (Float.of_int g.Mae.Gatearray.sites));
          ("routable", Json.Bool g.Mae.Gatearray.routable);
        ]
    | Mae.Methodology.Fullcustom _ | Mae.Methodology.Scalar _ -> []
  in
  Json.Object (base @ extra)

let method_result_json (r : Mae.Driver.method_result) =
  ( Mae.Methodology.name r.methodology,
    match r.outcome with
    | Ok o -> outcome_json o
    | Error e ->
        Json.Object
          [
            ("ok", Json.Bool false);
            ("error", Json.String (Mae.Methodology.error_to_string e));
          ] )

let module_json = function
  | Ok (r : Mae.Driver.module_report) ->
      (* the flat legacy fields stay (when their methodologies ran and
         succeeded) so pre-registry clients keep working; the "methods"
         object is the full per-methodology story. *)
      let legacy =
        (match Mae.Driver.stdcell r with
        | Some sc ->
            [
              ("rows", Json.Number (Float.of_int sc.Mae.Estimate.rows));
              ("stdcell_area", Json.Number sc.Mae.Estimate.area);
              ("stdcell_height", Json.Number sc.Mae.Estimate.height);
              ("stdcell_width", Json.Number sc.Mae.Estimate.width);
            ]
        | None -> [])
        @ (match Mae.Driver.fullcustom_exact r with
          | Some f -> [ ("fullcustom_exact_area", Json.Number f.Mae.Estimate.area) ]
          | None -> [])
        @
        match Mae.Driver.fullcustom_average r with
        | Some f -> [ ("fullcustom_average_area", Json.Number f.Mae.Estimate.area) ]
        | None -> []
      in
      Json.Object
        ([
           ("name", Json.String r.circuit.Mae_netlist.Circuit.name);
           ("technology", Json.String r.circuit.Mae_netlist.Circuit.technology);
         ]
        @ legacy
        @ [
            ("methods", Json.Object (List.map method_result_json r.results));
            ( "method_errors",
              Json.Number
                (Float.of_int (List.length (Mae.Driver.method_failures r))) );
          ])
  | Error e ->
      Json.Object
        [ ("error", Json.String (Format.asprintf "%a" Mae_engine.pp_error e)) ]

(* What one answered request amounts to, whichever path computed it. *)
type prepared = {
  fields : (string * Json.t) list;  (** after "seq" and "id" *)
  p_ok : bool;
  modules : int;
  modules_ok : int;
  rows_selected_total : int;
  cache_hits : int;
      (** kernel-cache traffic attributed to this request by the
          engine's domain-local accounting; 0 for a coalesced request
          (the shared batch's traffic is on the [serve.batch] record) *)
  cache_misses : int;
  cached : bool;
      (** every module of this request was answered from the estimate
          store -- per-request exact on both paths (the solo path's
          counter delta and the grouped path's per-module flags) *)
  server_error : bool;
      (** true when the failure is the server's fault (an estimator
          crash), as opposed to a malformed request or bad circuit --
          the distinction the error-budget SLO cares about *)
}

let failure ?(server_error = false) msg =
  {
    fields = [ ("ok", Json.Bool false); ("error", Json.String msg) ];
    p_ok = false;
    modules = 0;
    modules_ok = 0;
    rows_selected_total = 0;
    cache_hits = 0;
    cache_misses = 0;
    cached = false;
    server_error;
  }

(* Results (plus this request's own store traffic) to the response
   fields -- the shape both engine paths share. *)
let prepared_of_results ~cache_hits ~cache_misses ~store_hits ~store_misses
    results =
  let modules = List.length results in
  let modules_ok = List.length (List.filter Result.is_ok results) in
  (* a module that crashed its estimator is a server fault; a driver
     error (unknown process, invalid circuit) is the request's *)
  let crashed =
    List.exists
      (function Error (Mae_engine.Crashed _) -> true | Ok _ | Error _ -> false)
      results
  in
  let rows =
    List.fold_left
      (fun acc -> function
        | Ok (r : Mae.Driver.module_report) -> begin
            match Mae.Driver.stdcell r with
            | Some sc -> acc + sc.Mae.Estimate.rows
            | None -> acc
          end
        | Error _ -> acc)
      0 results
  in
  let cached = modules > 0 && store_hits = modules && store_misses = 0 in
  {
    fields =
      [
        ("ok", Json.Bool (modules_ok = modules));
        ("cached", Json.Bool cached);
        ("modules", Json.Array (List.map module_json results));
      ];
    p_ok = modules_ok = modules;
    modules;
    modules_ok;
    rows_selected_total = rows;
    cache_hits;
    cache_misses;
    cached;
    server_error = crashed;
  }

(* --- the queue --- *)

type job_kind =
  | J_estimate of Protocol.estimate
  | J_invalid of { id : Json.t; error : string }
  | J_shed of { id : Json.t }
  | J_reject of Protocol.response
      (** answered with no request accounting (oversize, bad framing,
          405) -- queued anyway so the response keeps its place in the
          connection's FIFO order *)

type job = {
  conn : Transport.conn;
  framing : Protocol.framing;
  kind : job_kind;
  t0 : float;  (** arrival instant: latency includes queue wait *)
  bytes : int;
}

type config = {
  jobs : int;
  registry : Mae_tech.Registry.t;
  inject_sleep_field : bool;
  queue_watermark : int;  (** queued estimates at/over this shed *)
  max_batch : int;  (** estimate jobs coalesced per engine batch *)
}

type t = {
  config : config;
  transport : Transport.t;
  pool : Mae_engine.Pool.t option;
  cas : Mae_db.Cas.t option;
  slo_latency : Mae_obs.Slo.t;
  slo_errors : Mae_obs.Slo.t;
  queue : job Queue.t;
  mutable next_seq : int;
  mutable queued_estimates : int;
}

let create ~config ~transport ~pool ~cas ~slo_latency ~slo_errors =
  {
    config;
    transport;
    pool;
    cas;
    slo_latency;
    slo_errors;
    queue = Queue.create ();
    next_seq = 1;
    queued_estimates = 0;
  }

let sync_depth t =
  Metrics.set queue_depth_gauge (Float.of_int (Queue.length t.queue))

let enqueue t conn framing ~bytes kind =
  let job =
    { conn; framing; kind; t0 = Mae_obs.Clock.monotonic (); bytes }
  in
  Queue.add job t.queue;
  conn.Transport.pending <- conn.Transport.pending + 1;
  sync_depth t

let submit_estimate t conn framing ~bytes (est : Protocol.estimate) =
  if t.queued_estimates >= t.config.queue_watermark then begin
    Metrics.incr requests_shed;
    enqueue t conn framing ~bytes (J_shed { id = est.Protocol.id })
  end
  else begin
    t.queued_estimates <- t.queued_estimates + 1;
    enqueue t conn framing ~bytes (J_estimate est)
  end

let submit_invalid t conn framing ~bytes ~id ~error =
  enqueue t conn framing ~bytes (J_invalid { id; error })

let submit_reject t conn framing response =
  enqueue t conn framing ~bytes:0 (J_reject response)

let queue_length t = Queue.length t.queue

(* --- answering --- *)

let finish t job response =
  job.conn.Transport.pending <- job.conn.Transport.pending - 1;
  Transport.send t.transport job.conn job.framing response

let seq_and_id seq id fields =
  Json.Object
    ((("seq", Json.Number (Float.of_int seq))
      :: (match id with Json.Null -> [] | id -> [ ("id", id) ]))
    @ fields)

(* Full per-request bookkeeping around [outcome]: the thunk runs inside
   the request's [serve.request] span (on the solo path it is the whole
   parse + engine run; a coalesced request already estimated and just
   returns).  Latency counts from frame arrival, so queue wait and any
   shared batch the request rode are part of its SLO story. *)
let answer t job ~id outcome =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let rid = "r" ^ string_of_int seq in
  Log.with_request_id rid @@ fun () ->
  Metrics.incr requests_total;
  let t0 = job.t0 in
  let p =
    Mae_obs.Span.with_ ~name:"serve.request" ~attrs:[ ("rid", rid) ] outcome
  in
  let latency = Mae_obs.Clock.monotonic () -. t0 in
  Metrics.observe request_latency latency;
  (* the sketch carries the request id as an exemplar so a bad
     quantile in /metrics links back to a trace in /tracez *)
  Mae_obs.Sketch.observe_exemplar request_latency_sketch ~label:rid latency;
  Mae_obs.Slo.record_latency t.slo_latency latency;
  (* only server faults (estimator crashes) burn the error budget;
     malformed client requests are the client's problem *)
  Mae_obs.Slo.record t.slo_errors ~good:(not p.server_error);
  let error =
    if p.p_ok then None
    else begin
      match List.assoc_opt "error" p.fields with
      | Some (Json.String e) -> Some e
      | _ -> Some "request failed"
    end
  in
  (* GC pause time that landed inside this request's window, from the
     runtime lens; 0 (one atomic check) when the lens is off *)
  let gc_s = Mae_obs.Runtime.pause_seconds_since t0 in
  Mae_obs.Capture.record ~rid ~ok:p.p_ok ?error ~gc_s ~latency ~since:t0 ();
  Metrics.incr (if p.p_ok then requests_ok else requests_failed);
  Log.info ~event:"serve.request"
    [
      ("seq", Log.Int seq);
      ("peer", Log.Str job.conn.Transport.peer);
      ("ok", Log.Bool p.p_ok);
      ("modules", Log.Int p.modules);
      ("modules_ok", Log.Int p.modules_ok);
      ("rows_selected", Log.Int p.rows_selected_total);
      ("latency_s", Log.Float latency);
      ("gc_s", Log.Float gc_s);
      ("cache_hits", Log.Int p.cache_hits);
      ("cache_misses", Log.Int p.cache_misses);
      ("cached", Log.Bool p.cached);
      ("bytes_in", Log.Int job.bytes);
    ];
  let status = if p.p_ok then 200 else if p.server_error then 500 else 400 in
  finish t job
    (Protocol.json_response ~status (seq_and_id seq id p.fields))

let shed_retry_after_s = 1

(* A shed request: counted (total + failed + its own counter) and
   logged, but no latency/error SLO events and no capture -- admission
   control protecting the objectives must not burn their budgets. *)
let answer_shed t job ~id =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let rid = "r" ^ string_of_int seq in
  Log.with_request_id rid @@ fun () ->
  Metrics.incr requests_total;
  Metrics.incr requests_failed;
  let latency = Mae_obs.Clock.monotonic () -. job.t0 in
  Log.info ~event:"serve.request"
    [
      ("seq", Log.Int seq);
      ("peer", Log.Str job.conn.Transport.peer);
      ("ok", Log.Bool false);
      ("shed", Log.Bool true);
      ("modules", Log.Int 0);
      ("modules_ok", Log.Int 0);
      ("rows_selected", Log.Int 0);
      ("latency_s", Log.Float latency);
      ("gc_s", Log.Float 0.);
      ("cache_hits", Log.Int 0);
      ("cache_misses", Log.Int 0);
      ("cached", Log.Bool false);
      ("bytes_in", Log.Int job.bytes);
    ];
  let fields =
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.String
          (Printf.sprintf
             "server overloaded: request queue at watermark; retry after %ds"
             shed_retry_after_s) );
      ("retry_after_s", Json.Number (Float.of_int shed_retry_after_s));
    ]
  in
  finish t job
    (Protocol.json_response ~status:503 ~retry_after_s:shed_retry_after_s
       (seq_and_id seq id fields))

(* --- the estimate paths --- *)

let inject_sleep t (est : Protocol.estimate) =
  if t.config.inject_sleep_field then
    match est.Protocol.sleep_s with Some s -> Unix.sleepf s | None -> ()

(* One request, one engine batch: the pre-coalescing hot path, kept
   byte-identical in behavior (store-counter delta, per-request
   kernel-cache attribution) for the common lockstep client. *)
let solo_outcome t (est : Protocol.estimate) =
  inject_sleep t est;
  match Mae.Driver.string_circuits est.Protocol.hdl with
  | Error e -> failure (Format.asprintf "%a" Mae.Driver.pp_error e)
  | Ok circuits -> begin
      match
        Mae_engine.run_circuits_with_stats ?methods:est.Protocol.methods
          ?pool:t.pool ?cache:t.cas ~jobs:t.config.jobs
          ~registry:t.config.registry circuits
      with
      | results, stats ->
          prepared_of_results ~cache_hits:stats.Mae_engine.cache_hits
            ~cache_misses:stats.Mae_engine.cache_misses
            ~store_hits:stats.Mae_engine.store_hits
            ~store_misses:stats.Mae_engine.store_misses results
      | exception exn ->
          failure ~server_error:true
            ("estimator crashed: " ^ Printexc.to_string exn)
    end

(* Coalescing: several estimate jobs from the queue prefix run as one
   engine fan-out per method selection.  Sleep injection and hdl
   parsing stay in arrival order; the grouped engine call gives each
   request its own results slice and store hit/miss counts, so the
   per-request "cached" field stays exact.  Per-request kernel-cache
   attribution does not survive sharing a batch -- those totals go on
   the [serve.batch] debug record instead. *)
let prepare_batch t ests =
  List.iter (fun (_, est) -> inject_sleep t est) ests;
  let parsed =
    List.map
      (fun (job, est) ->
        match Mae.Driver.string_circuits est.Protocol.hdl with
        | Error e ->
            (job, est, Error (Format.asprintf "%a" Mae.Driver.pp_error e))
        | Ok circuits -> (job, est, Ok circuits))
      ests
  in
  let groups = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (job, est, p) ->
      match p with
      | Error _ -> ()
      | Ok circuits ->
          let key =
            match est.Protocol.methods with
            | None -> "\x00default"
            | Some names -> String.concat "," names
          in
          if not (Hashtbl.mem groups key) then order := key :: !order;
          Hashtbl.replace groups key
            ((job, est, circuits)
            :: (try Hashtbl.find groups key with Not_found -> [])))
    parsed;
  let outcomes = ref [] in
  List.iter
    (fun key ->
      let members = List.rev (Hashtbl.find groups key) in
      let methods =
        match members with (_, est, _) :: _ -> est.Protocol.methods | [] -> None
      in
      Metrics.observe batch_requests (Float.of_int (List.length members));
      match
        Mae_obs.Span.with_ ~name:"serve.batch"
          ~attrs:[ ("requests", string_of_int (List.length members)) ]
          (fun () ->
            Mae_engine.run_grouped ?methods ~jobs:t.config.jobs ?pool:t.pool
              ?cache:t.cas ~registry:t.config.registry
              (List.map (fun (_, _, circuits) -> circuits) members))
      with
      | grouped, stats ->
          if Log.enabled Log.Debug then
            Log.debug ~event:"serve.batch"
              [
                ("requests", Log.Int (List.length members));
                ("modules", Log.Int stats.Mae_engine.modules);
                ("cache_hits", Log.Int stats.Mae_engine.cache_hits);
                ("cache_misses", Log.Int stats.Mae_engine.cache_misses);
                ("store_hits", Log.Int stats.Mae_engine.store_hits);
                ("store_misses", Log.Int stats.Mae_engine.store_misses);
              ];
          List.iter2
            (fun (job, _, _) (results, store_hits, store_misses) ->
              outcomes :=
                ( job,
                  prepared_of_results ~cache_hits:0 ~cache_misses:0 ~store_hits
                    ~store_misses results )
                :: !outcomes)
            members grouped
      | exception exn ->
          let p =
            failure ~server_error:true
              ("estimator crashed: " ^ Printexc.to_string exn)
          in
          List.iter (fun (job, _, _) -> outcomes := (job, p) :: !outcomes)
            members)
    (List.rev !order);
  List.iter
    (fun (job, _, p) ->
      match p with
      | Error msg -> outcomes := (job, failure msg) :: !outcomes
      | Ok _ -> ())
    parsed;
  !outcomes

(* --- the tick --- *)

(* Pop a FIFO prefix holding at most [max_batch] estimate jobs (shed,
   invalid and reject jobs ride along free -- they cost no engine
   time).  Stops *before* the estimate that would overflow, so its
   response order relative to its connection still holds. *)
let take_prefix t =
  let batch = ref [] in
  let estimates = ref 0 in
  let rec go () =
    match Queue.peek_opt t.queue with
    | None -> ()
    | Some job -> begin
        match job.kind with
        | J_estimate _ when !estimates >= t.config.max_batch -> ()
        | kind ->
            ignore (Queue.pop t.queue);
            (match kind with
            | J_estimate _ ->
                incr estimates;
                t.queued_estimates <- t.queued_estimates - 1
            | J_invalid _ | J_shed _ | J_reject _ -> ());
            batch := job :: !batch;
            go ()
      end
  in
  go ();
  List.rev !batch

let process t jobs =
  let ests =
    List.filter_map
      (fun job ->
        match job.kind with J_estimate est -> Some (job, est) | _ -> None)
      jobs
  in
  (* a lone estimate keeps the pre-coalescing solo path: its engine run
     happens inside its own serve.request span with per-request
     kernel-cache attribution, exactly as before the split *)
  let prepared = match ests with [] | [ _ ] -> [] | _ -> prepare_batch t ests in
  List.iter
    (fun job ->
      match job.kind with
      | J_reject response -> finish t job response
      | J_shed { id } -> answer_shed t job ~id
      | J_invalid { id; error } ->
          answer t job ~id (fun () -> failure error)
      | J_estimate est -> begin
          match List.assq_opt job prepared with
          | Some p -> answer t job ~id:est.Protocol.id (fun () -> p)
          | None ->
              answer t job ~id:est.Protocol.id (fun () -> solo_outcome t est)
        end)
    jobs

let tick t =
  if Queue.is_empty t.queue then false
  else begin
    let batch = take_prefix t in
    sync_depth t;
    process t batch;
    not (Queue.is_empty t.queue)
  end
