(** The bounded submission queue in front of the engine.

    One FIFO queue for every request-plane frame keeps each
    connection's responses in its own arrival order.  A {!tick} takes
    a queue prefix, coalesces its estimate jobs into engine batches
    (one {!Mae_engine.run_grouped} fan-out per method selection) and
    answers every job with the full per-request bookkeeping: seq/rid,
    latency histogram + sketch exemplar, SLO events, tail capture,
    the access-log record, the response write.

    Admission control: at the queue-depth watermark a new estimate is
    answered 503 + Retry-After without estimation.  Shed requests
    count into requests_total/failed and their own counter but burn
    neither the latency nor the error SLO. *)

module Json = Mae_obs.Json

type config = {
  jobs : int;
  registry : Mae_tech.Registry.t;
  inject_sleep_field : bool;
  queue_watermark : int;  (** queued estimates at/over this shed *)
  max_batch : int;  (** estimate jobs coalesced per engine batch *)
}

type t

val create :
  config:config ->
  transport:Transport.t ->
  pool:Mae_engine.Pool.t option ->
  cas:Mae_db.Cas.t option ->
  slo_latency:Mae_obs.Slo.t ->
  slo_errors:Mae_obs.Slo.t ->
  t

val submit_estimate :
  t -> Transport.conn -> Protocol.framing -> bytes:int ->
  Protocol.estimate -> unit

val submit_invalid :
  t -> Transport.conn -> Protocol.framing -> bytes:int ->
  id:Json.t -> error:string -> unit

val submit_reject :
  t -> Transport.conn -> Protocol.framing -> Protocol.response -> unit
(** Queue a pre-built response (oversize, bad framing, 405) so it keeps
    its place in the connection's FIFO order; answered with no request
    accounting. *)

val tick : t -> bool
(** Process one queue prefix (at most [max_batch] estimates plus any
    free riders); [true] when a backlog remains, so the select loop
    polls instead of sleeping. *)

val queue_length : t -> int

(** {1 Registry instruments} (exposed for the obs documents) *)

val requests_total : Mae_obs.Metrics.counter
val requests_ok : Mae_obs.Metrics.counter
val requests_failed : Mae_obs.Metrics.counter
val requests_shed : Mae_obs.Metrics.counter
val request_latency_sketch : Mae_obs.Sketch.t
