(* Mae_serve: the resident estimation service.

   Three layers, one single-threaded select loop:

   - {!Transport}: listeners, accept, buffered non-blocking reads,
     the write-everything loop, idle reaping, the max-connection cap;
   - {!Protocol}: the pure codec.  Line-delimited JSON and HTTP
     (1.1 keep-alive with Content-Length framing, 1.0 close-by-default
     fallback) both decode to one typed request;
   - {!Dispatch}: the bounded FIFO submission queue in front of the
     persistent {!Mae_engine.Pool}.  Concurrently-arriving estimate
     requests coalesce into engine batches; at the queue watermark
     admission control answers 503 + Retry-After without estimating.

   This module is the wiring: configuration, the SLO/capture/store
   setup, the observability documents (/metrics, /healthz, /slo,
   /statusz, /buildinfo, /tracez, /methods, /runtimez -- answered on
   either plane, over the same transport), startup and drain.

   Estimation is CPU work measured in milliseconds per module, so the
   loop runs requests inline: while a batch estimates, the scrape plane
   waits -- the trade a sidecar-free stdlib+unix server makes.  Worker
   parallelism still applies inside a batch: when [config.jobs >= 2]
   the server spawns one persistent {!Mae_engine.Pool} at startup and
   reuses its domains for every batch, so request latency never pays
   domain creation.

   SIGINT/SIGTERM flip one atomic flag; the loop then stops accepting,
   answers every request already received (the drain), emits a final
   [serve.shutdown] log record and flushes the configured
   metrics/trace dumps before returning. *)

module Json = Mae_obs.Json
module Log = Mae_obs.Log
module Metrics = Mae_obs.Metrics

(* Make the baseline methodologies selectable in requests: their
   registration runs when Mae_baselines.Methods initializes, which this
   reference forces (Mae_engine does the same; twice is harmless). *)
let () = Mae_baselines.Methods.ensure_registered ()

type addr = Transport.addr =
  | Tcp of { host : string; port : int }
  | Unix_sock of string

let pp_addr = Transport.pp_addr
let parse_addr = Transport.parse_addr

type slo_config = {
  latency_threshold_s : float;  (** a request is "good" iff at or under *)
  latency_target : float;  (** required good fraction for latency *)
  error_target : float;  (** required non-server-error fraction *)
  fast_window_s : float;
  slow_window_s : float;
  min_events : int;  (** fast-window events before /healthz may degrade *)
}

let default_slo =
  {
    latency_threshold_s = 0.25;
    latency_target = 0.99;
    error_target = 0.999;
    fast_window_s = 300.;
    slow_window_s = 3600.;
    min_events = 20;
  }

type config = {
  request_addr : addr;
  obs_addr : addr option;
  jobs : int;  (** engine domains per request batch *)
  registry : Mae_tech.Registry.t;
  trace_out : string option;  (** Chrome trace flushed at shutdown *)
  metrics_out : string option;  (** metrics dump flushed at shutdown *)
  max_line_bytes : int;
  span_retention : int;  (** recent-span window backing /tracez *)
  slo : slo_config;
  capture_slow_k : int;  (** slowest-k span trees kept per window *)
  capture_errored_cap : int;  (** errored span trees kept (FIFO ring) *)
  capture_max_spans : int;  (** spans kept per captured request *)
  inject_sleep_field : bool;
      (** honour a "sleep_s" request field by sleeping before
          estimation -- an overload injector for the serve smoke gate;
          never enable in production *)
  estimate_cache : bool;
      (** consult and populate the content-addressed estimate store
          ({!Mae_db.Cas}); repeats of a request batch are answered from
          it bit-for-bit *)
  store_journal : string option;
      (** append-only journal backing the estimate store: replayed at
          startup (a restarted daemon answers warm) and appended on
          every store insert *)
  store_out : string option;
      (** {!Mae_db.Store}-format snapshot of the estimate store written
          at shutdown (the floor-planner feed) *)
  store_live_cap : int option;
      (** LRU bound on the store's live (promoted) tier; [None] is
          unbounded *)
  idle_timeout_s : float;
      (** keep-alive connections idle this long are reaped *)
  max_connections : int;
      (** accept cap across both planes; over it, accept-then-close *)
  queue_watermark : int;
      (** queued estimates at/over this are shed (503 + Retry-After) *)
  max_batch : int;  (** estimate requests coalesced per engine batch *)
  on_ready : request_addr:addr -> obs_addr:addr option -> unit;
}

let default_config ~registry ~request_addr =
  {
    request_addr;
    obs_addr = None;
    jobs = 1;
    registry;
    trace_out = None;
    metrics_out = None;
    max_line_bytes = 8 * 1024 * 1024;
    span_retention = 4096;
    slo = default_slo;
    capture_slow_k = 8;
    capture_errored_cap = 32;
    capture_max_spans = 256;
    inject_sleep_field = false;
    estimate_cache = true;
    store_journal = None;
    store_out = None;
    store_live_cap = Some 65536;
    idle_timeout_s = 300.;
    max_connections = 1024;
    queue_watermark = 256;
    max_batch = 32;
    on_ready = (fun ~request_addr:_ ~obs_addr:_ -> ());
  }

let scrapes_total =
  Metrics.counter "mae_serve_scrapes_total"
    ~help:"Observability-plane HTTP requests answered"

let counter_value name =
  match Metrics.find_counter name with
  | Some c -> Metrics.counter_value c
  | None -> 0

type state = {
  config : config;
  started : float;  (** wall clock, for display (buildinfo started_ts) *)
  started_mono : float;  (** monotonic, for uptime arithmetic *)
  transport : Transport.t;
  dispatch : Dispatch.t;
  mutable draining : bool;
}

let uptime_s st = Mae_obs.Clock.monotonic () -. st.started_mono

(* --- the observability documents --- *)

let healthz_body st ~slo_healthy =
  let num n = Json.Number (Float.of_int n) in
  let status =
    if st.draining then "draining"
    else if not slo_healthy then "degraded"
    else "ok"
  in
  Json.encode
    (Json.Object
       [
         ("status", Json.String status);
         ("slo_healthy", Json.Bool slo_healthy);
         ("uptime_s", Json.Number (uptime_s st));
         ("pid", num (Unix.getpid ()));
         ("jobs", num st.config.jobs);
         ("recommended_domains", num (Mae_engine.default_jobs ()));
         ("telemetry", Json.Bool (Mae_obs.enabled ()));
         ( "log_threshold",
           match Log.current_threshold () with
           | None -> Json.Null
           | Some l -> Json.String (Log.level_name l) );
         ("requests_total", num (Metrics.counter_value Dispatch.requests_total));
         ("requests_ok", num (Metrics.counter_value Dispatch.requests_ok));
         ( "requests_failed",
           num (Metrics.counter_value Dispatch.requests_failed) );
         ("open_connections", num (Transport.open_request_conns st.transport));
         ( "engine",
           Json.Object
             [
               ("modules_total", num (counter_value "mae_engine_modules_total"));
               ("modules_ok", num (counter_value "mae_engine_modules_ok_total"));
               ( "modules_failed",
                 num (counter_value "mae_engine_modules_failed_total") );
             ] );
       ])
  ^ "\n"

let buildinfo_body st =
  Json.encode
    (Json.Object
       [
         ("name", Json.String "mae");
         ("version", Json.String "1.0.0");
         ( "paper",
           Json.String
             "Chen & Bushnell, A Module Area Estimator for VLSI Layout, DAC'88"
         );
         ("ocaml", Json.String Sys.ocaml_version);
         ("word_size", Json.Number (Float.of_int Sys.word_size));
         ("os_type", Json.String Sys.os_type);
         ("pid", Json.Number (Float.of_int (Unix.getpid ())));
         ("started_ts", Json.Number st.started);
       ])
  ^ "\n"

let methods_body () =
  Json.encode
    (Json.Object
       [
         ( "default",
           Json.Array
             (List.map
                (fun n -> Json.String n)
                Mae.Methodology.default_names) );
         ( "methods",
           Json.Array
             (List.map
                (fun t ->
                  Json.Object
                    [
                      ("name", Json.String (Mae.Methodology.name t));
                      ("doc", Json.String (Mae.Methodology.doc t));
                    ])
                (Mae.Methodology.all ())) );
       ])
  ^ "\n"

let span_json (e : Mae_obs.Span.event) =
  Json.Object
    [
      ("name", Json.String e.name);
      ("domain", Json.Number (Float.of_int e.domain));
      ("depth", Json.Number (Float.of_int e.depth));
      (* span timestamps are monotonic; report an approximate epoch
         time for readers and keep the raw monotonic instant for
         ordering against other spans *)
      ("ts", Json.Number (Mae_obs.Clock.wall_of_monotonic e.ts));
      ("ts_mono", Json.Number e.ts);
      ("dur_s", Json.Number e.dur);
      ("self_s", Json.Number e.self);
    ]

let capture_json (c : Mae_obs.Capture.capture) =
  Json.Object
    ([
       ("rid", Json.String c.cap_rid);
       ( "kind",
         Json.String
           (match c.cap_kind with `Errored -> "errored" | `Slow -> "slow") );
       ("ts", Json.Number c.cap_wall);
       ("latency_s", Json.Number c.cap_latency);
       ("gc_s", Json.Number c.cap_gc_s);
     ]
    @ (match c.cap_error with
      | None -> []
      | Some e -> [ ("error", Json.String e) ])
    @ [ ("spans", Json.Array (List.map span_json c.cap_spans)) ])

let tracez_body st =
  let events = Mae_obs.Span.events () in
  let recent =
    let by_ts_desc =
      List.sort
        (fun (a : Mae_obs.Span.event) (b : Mae_obs.Span.event) ->
          Float.compare b.ts a.ts)
        events
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    List.rev (take 100 by_ts_desc)
  in
  let flame_json (r : Mae_obs.Trace.flame_row) =
    Json.Object
      [
        ("span", Json.String r.span_name);
        ("calls", Json.Number (Float.of_int r.calls));
        ("total_s", Json.Number r.total_s);
        ("self_s", Json.Number r.self_s);
      ]
  in
  Json.encode
    (Json.Object
       [
         ("telemetry", Json.Bool (Mae_obs.enabled ()));
         ( "retention",
           Json.Number (Float.of_int st.config.span_retention) );
         (* tail-based capture: the span trees of errored and
            slowest-k requests, the ones worth keeping; request ids
            here match the exemplar labels in /metrics *)
         ( "captures",
           Json.Array (List.map capture_json (Mae_obs.Capture.captures ())) );
         ( "capture_resident_spans",
           Json.Number (Float.of_int (Mae_obs.Capture.resident_spans ())) );
         ( "capture_max_resident_spans",
           Json.Number (Float.of_int (Mae_obs.Capture.max_resident_spans ()))
         );
         ("recent_spans", Json.Array (List.map span_json recent));
         ("flame", Json.Array (List.map flame_json (Mae_obs.Trace.flame ())));
       ])
  ^ "\n"

let slo_body () = Json.encode (Mae_obs.Slo.to_json ()) ^ "\n"

(* /runtimez: the runtime lens document -- sampler state, per-domain
   GC statistics, process telemetry.  Served even when the lens is
   off (the document says so and still carries the process section). *)
let runtimez_body () = Json.encode (Mae_obs.Runtime.to_json ()) ^ "\n"

(* /statusz: the one-page human summary -- uptime, traffic, cache,
   objectives, latency quantiles, captured tails. *)
let statusz_body st =
  let b = Buffer.create 1024 in
  let reqs = Metrics.counter_value Dispatch.requests_total in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "mae serve status";
  line "";
  line "uptime_s: %.1f  pid: %d  jobs: %d  telemetry: %s  draining: %b"
    (uptime_s st) (Unix.getpid ()) st.config.jobs
    (if Mae_obs.enabled () then "on" else "off")
    st.draining;
  line "requests: %d total, %d ok, %d failed (%d shed); open connections: %d"
    reqs
    (Metrics.counter_value Dispatch.requests_ok)
    (Metrics.counter_value Dispatch.requests_failed)
    (Metrics.counter_value Dispatch.requests_shed)
    (Transport.open_request_conns st.transport);
  let hits = counter_value "mae_kernel_cache_hits_total" in
  let misses = counter_value "mae_kernel_cache_misses_total" in
  let lookups = hits + misses in
  line "engine: %d modules (%d ok); kernel cache %d lookups, hit ratio %s"
    (counter_value "mae_engine_modules_total")
    (counter_value "mae_engine_modules_ok_total")
    lookups
    (if lookups = 0 then "n/a"
     else Printf.sprintf "%.1f%%" (100. *. float_of_int hits /. float_of_int lookups));
  line "";
  List.iter
    (fun (r : Mae_obs.Slo.report) ->
      let kind =
        match r.r_spec.kind with
        | Mae_obs.Slo.Latency th -> Printf.sprintf "latency <= %gms" (th *. 1e3)
        | Mae_obs.Slo.Error_rate -> "error rate"
      in
      line "slo %s [%s, target %g%%]: fast burn %.2f (%d/%d bad), slow burn %.2f -- %s"
        r.r_spec.slo_name kind
        (100. *. r.r_spec.target)
        r.fast.burn_rate r.fast.bad
        (r.fast.good + r.fast.bad)
        r.slow.burn_rate
        (if r.r_healthy then "healthy" else "BUDGET EXHAUSTED"))
    (Mae_obs.Slo.reports ());
  line "";
  let s = Mae_obs.Sketch.snapshot Dispatch.request_latency_sketch in
  if s.n = 0 then line "request latency: no samples yet"
  else begin
    let q p =
      match List.assoc_opt p s.quantiles with
      | Some v -> Printf.sprintf "%.0fus" (v *. 1e6)
      | None -> "-"
    in
    line "request latency: p50 %s  p90 %s  p95 %s  p99 %s  p999 %s (n=%d, eps=%g)"
      (q 0.5) (q 0.9) (q 0.95) (q 0.99) (q 0.999) s.n s.eps
  end;
  let caps = Mae_obs.Capture.captures () in
  let errored =
    List.length (List.filter (fun c -> c.Mae_obs.Capture.cap_kind = `Errored) caps)
  in
  line "captures: %d errored, %d slow (resident spans %d/%d)" errored
    (List.length caps - errored)
    (Mae_obs.Capture.resident_spans ())
    (Mae_obs.Capture.max_resident_spans ());
  if Mae_obs.Runtime.running () then begin
    let q p =
      match Mae_obs.Runtime.pause_quantile p with
      | Some v -> Printf.sprintf "%.0fus" (v *. 1e6)
      | None -> "-"
    in
    line "gc: %d pauses (p50 %s, p99 %s, max %s) across %d domains -- /runtimez"
      (Mae_obs.Runtime.pause_count ())
      (q 0.5) (q 0.99)
      (match Mae_obs.Runtime.max_pause_seconds () with
      | Some v -> Printf.sprintf "%.0fus" (v *. 1e6)
      | None -> "-")
      (List.length (Mae_obs.Runtime.domains ()))
  end;
  Buffer.contents b

let obs_response st path =
  match path with
  | "/metrics" ->
      Protocol.text_response ~content_type:"text/plain; version=0.0.4"
        (Metrics.to_prometheus ())
  | "/healthz" ->
      (* liveness degrades to 503 when the fast-window error budget
         of any objective is exhausted: load balancers shed load
         from an instance that is up but missing its SLOs. *)
      let slo_healthy = Mae_obs.Slo.healthy () in
      let status =
        if (not st.draining) && not slo_healthy then 503 else 200
      in
      Protocol.text_response ~status ~content_type:"application/json"
        (healthz_body st ~slo_healthy)
  | "/slo" ->
      Protocol.text_response ~content_type:"application/json" (slo_body ())
  | "/statusz" -> Protocol.text_response (statusz_body st)
  | "/buildinfo" ->
      Protocol.text_response ~content_type:"application/json"
        (buildinfo_body st)
  | "/tracez" ->
      Protocol.text_response ~content_type:"application/json" (tracez_body st)
  | "/methods" ->
      Protocol.text_response ~content_type:"application/json" (methods_body ())
  | "/runtimez" ->
      Protocol.text_response ~content_type:"application/json"
        (runtimez_body ())
  | _ ->
      Protocol.text_response ~status:404
        "not found; try /metrics /healthz /slo /statusz /buildinfo /tracez \
         /methods /runtimez\n"

(* One decoded frame: scrapes and framing errors answer inline (the
   obs documents stay responsive under a request backlog -- the point
   of admission control); estimation and request errors queue so each
   connection's responses keep arrival order. *)
let handle st conn (frame : Protocol.frame) =
  let framing = frame.Protocol.framing in
  match frame.Protocol.request with
  | Protocol.Scrape { path } ->
      Metrics.incr scrapes_total;
      Transport.send st.transport conn framing (obs_response st path)
  | Protocol.Not_allowed _ ->
      Metrics.incr scrapes_total;
      Transport.send st.transport conn framing
        (Protocol.text_response ~status:405 "only GET is served here\n")
  | Protocol.Malformed { status; error } ->
      Metrics.incr scrapes_total;
      Transport.send st.transport conn framing
        (Protocol.text_response ~status (error ^ "\n"))
  | Protocol.Too_large { limit } ->
      (* answered in queue order, counted nowhere -- and, unlike the
         pre-split daemon, the connection survives: a line connection
         resynchronizes at the next newline *)
      Dispatch.submit_reject st.dispatch conn framing
        (Protocol.json_response ~status:413
           (Json.Object
              [
                ("ok", Json.Bool false);
                ( "error",
                  Json.String
                    (Printf.sprintf "request line exceeds %d bytes" limit) );
              ]))
  | Protocol.Invalid { id; error } ->
      Dispatch.submit_invalid st.dispatch conn framing
        ~bytes:frame.Protocol.bytes ~id ~error
  | Protocol.Estimate est ->
      Dispatch.submit_estimate st.dispatch conn framing
        ~bytes:frame.Protocol.bytes est

(* --- shutdown flag --- *)

let stop_requested = Atomic.make false

let install_signal_handlers () =
  let note _ = Atomic.set stop_requested true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle note)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle note)
   with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let final_flush st =
  let reqs = Metrics.counter_value Dispatch.requests_total in
  Log.info ~event:"serve.shutdown"
    [
      ("uptime_s", Log.Float (uptime_s st));
      ("requests_total", Log.Int reqs);
      ("requests_ok", Log.Int (Metrics.counter_value Dispatch.requests_ok));
      ( "requests_failed",
        Log.Int (Metrics.counter_value Dispatch.requests_failed) );
    ];
  begin
    match st.config.metrics_out with
    | None -> ()
    | Some path ->
        let result =
          if Filename.check_suffix path ".json" then Metrics.write_json ~path
          else Metrics.write_prometheus ~path
        in
        (match result with
        | Ok () -> ()
        | Error e ->
            Log.error ~event:"serve.flush_failed"
              [ ("artifact", Log.Str "metrics"); ("error", Log.Str e) ])
  end;
  match st.config.trace_out with
  | None -> ()
  | Some path -> (
      match Mae_obs.Trace.write_chrome ~path with
      | Ok () -> ()
      | Error e ->
          Log.error ~event:"serve.flush_failed"
            [ ("artifact", Log.Str "trace"); ("error", Log.Str e) ])

let run (config : config) =
  match Transport.listen_on config.request_addr with
  | Error _ as e -> e
  | Ok (req_listener, request_addr) -> begin
      let obs =
        match config.obs_addr with
        | None -> Ok None
        | Some addr -> (
            match Transport.listen_on addr with
            | Ok (fd, bound) -> Ok (Some (fd, bound))
            | Error _ as e -> e)
      in
      match obs with
      | Error e ->
          Unix.close req_listener;
          Transport.unlink_unix_addr config.request_addr;
          Error e
      | Ok obs ->
          let obs_listener = Option.map fst obs in
          let obs_addr = Option.map snd obs in
          install_signal_handlers ();
          Atomic.set stop_requested false;
          (* tracing in a resident process keeps a bounded recent
             window; the final dump and /tracez both read it. *)
          Mae_obs.Span.set_retention (Some config.span_retention);
          if Option.is_some config.trace_out then Mae_obs.set_enabled true;
          (* the runtime lens rides with telemetry: GC pause sketches
             per domain, /runtimez, gc.* spans in the final trace *)
          if Mae_obs.enabled () then ignore (Mae_obs.Runtime.start ());
          let pool =
            (* [jobs = 0] means "the host's recommendation", like the
               engine's own resolution; 0 or 1 worker needs no pool *)
            let jobs =
              if config.jobs = 0 then Mae_engine.default_jobs ()
              else config.jobs
            in
            if jobs >= 2 then Some (Mae_engine.Pool.create ~domains:(jobs - 1))
            else None
          in
          (* declarative objectives over the request plane; both ride
             the same rolling multi-window burn-rate rings *)
          let slo_latency =
            Mae_obs.Slo.register
              (Mae_obs.Slo.spec
                 ~description:
                   (Printf.sprintf "%.0f%% of requests under %gms"
                      (100. *. config.slo.latency_target)
                      (config.slo.latency_threshold_s *. 1e3))
                 ~kind:(Mae_obs.Slo.Latency config.slo.latency_threshold_s)
                 ~target:config.slo.latency_target
                 ~fast_window_s:config.slo.fast_window_s
                 ~slow_window_s:config.slo.slow_window_s
                 ~min_events:config.slo.min_events "mae_serve_latency_slo")
          in
          let slo_errors =
            Mae_obs.Slo.register
              (Mae_obs.Slo.spec
                 ~description:
                   (Printf.sprintf "%.1f%% of requests without server errors"
                      (100. *. config.slo.error_target))
                 ~kind:Mae_obs.Slo.Error_rate ~target:config.slo.error_target
                 ~fast_window_s:config.slo.fast_window_s
                 ~slow_window_s:config.slo.slow_window_s
                 ~min_events:config.slo.min_events "mae_serve_errors_slo")
          in
          Mae_obs.Capture.configure ~slow_k:config.capture_slow_k
            ~errored_cap:config.capture_errored_cap
            ~max_spans:config.capture_max_spans ();
          let cas =
            if config.estimate_cache then begin
              let cas = Mae_db.Cas.create ?live_cap:config.store_live_cap () in
              (match config.store_journal with
              | None -> ()
              | Some path -> (
                  match Mae_db.Cas.open_journal cas ~path with
                  | Ok (loaded, skipped) ->
                      Log.info ~event:"serve.store_warm"
                        [
                          ("journal", Log.Str path);
                          ("loaded", Log.Int loaded);
                          ("skipped", Log.Int skipped);
                        ]
                  | Error e ->
                      (* estimation must not die with the journal; run
                         cold and say so loudly *)
                      Log.error ~event:"serve.store_journal_failed"
                        [ ("journal", Log.Str path); ("error", Log.Str e) ]));
              Some cas
            end
            else None
          in
          let transport =
            Transport.create
              ~config:
                {
                  Transport.max_request_bytes = config.max_line_bytes;
                  idle_timeout_s = config.idle_timeout_s;
                  max_connections = config.max_connections;
                }
              ~listeners:
                ((req_listener, Transport.Request_plane)
                :: (match obs_listener with
                   | None -> []
                   | Some l -> [ (l, Transport.Obs_plane) ]))
          in
          let dispatch =
            Dispatch.create
              ~config:
                {
                  Dispatch.jobs = config.jobs;
                  registry = config.registry;
                  inject_sleep_field = config.inject_sleep_field;
                  queue_watermark = config.queue_watermark;
                  max_batch = config.max_batch;
                }
              ~transport ~pool ~cas ~slo_latency ~slo_errors
          in
          let st =
            {
              config;
              started = Unix.gettimeofday ();
              started_mono = Mae_obs.Clock.monotonic ();
              transport;
              dispatch;
              draining = false;
            }
          in
          Log.info ~event:"serve.start"
            ([
               ("addr", Log.Str (Format.asprintf "%a" pp_addr request_addr));
               ("jobs", Log.Int config.jobs);
               ("pid", Log.Int (Unix.getpid ()));
             ]
            @
            match obs_addr with
            | None -> []
            | Some a ->
                [ ("obs_addr", Log.Str (Format.asprintf "%a" pp_addr a)) ]);
          config.on_ready ~request_addr ~obs_addr;
          Transport.run_loop transport
            ~stop:(fun () -> Atomic.get stop_requested)
            ~handle:(handle st)
            ~tick:(fun () -> Dispatch.tick st.dispatch);
          (* drain: no new connections; answer every request already
             received, give scrape connections their response, close all. *)
          st.draining <- true;
          Unix.close req_listener;
          Option.iter Unix.close obs_listener;
          Transport.drain transport ~handle:(handle st)
            ~tick:(fun () -> Dispatch.tick st.dispatch);
          Transport.unlink_unix_addr config.request_addr;
          Option.iter Transport.unlink_unix_addr config.obs_addr;
          Option.iter Mae_engine.Pool.shutdown pool;
          (match cas with
          | None -> ()
          | Some cas ->
              (match config.store_out with
              | None -> ()
              | Some path -> (
                  match Mae_db.Store.save (Mae_db.Cas.to_store cas) ~path with
                  | Ok () ->
                      Log.info ~event:"serve.store_flush"
                        [ ("store", Log.Str path) ]
                  | Error e ->
                      Log.error ~event:"serve.flush_failed"
                        [ ("artifact", Log.Str "store"); ("error", Log.Str e) ]));
              Mae_db.Cas.close_journal cas);
          (* join the sampler and drain the cursor before the trace
             flush so the export carries the last GC windows *)
          Mae_obs.Runtime.stop ();
          final_flush st;
          Ok ()
    end

module Protocol = Protocol
module Transport = Transport
module Dispatch = Dispatch
module Top = Top
