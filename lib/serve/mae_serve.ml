(* Mae_serve: the resident estimation service.

   Two planes, one single-threaded select loop:

   - the request plane: line-delimited JSON over a TCP or Unix socket.
     Each line is one estimation request; the answer is one JSON line
     through Mae_engine, in request order per connection.
   - the observability plane: a minimal HTTP/1.0 responder on a second
     socket serving GET /metrics (Prometheus text from the Mae_obs
     registry), /healthz, /buildinfo, /tracez and /runtimez (per-domain
     GC statistics from the runtime lens).

   Estimation is CPU work measured in milliseconds per module, so the
   loop runs requests inline: while a batch estimates, the scrape plane
   waits -- the trade a sidecar-free stdlib+unix server makes.  Worker
   parallelism still applies inside a request: when [config.jobs >= 2]
   the server spawns one persistent {!Mae_engine.Pool} at startup and
   reuses its domains for every batch, so request latency never pays
   domain creation.

   SIGINT/SIGTERM flip one atomic flag; the loop then stops accepting,
   answers every request line already received (the drain), emits a
   final [serve.shutdown] log record and flushes the configured
   metrics/trace dumps before returning. *)

module Json = Mae_obs.Json
module Log = Mae_obs.Log
module Metrics = Mae_obs.Metrics

(* Make the baseline methodologies selectable in requests: their
   registration runs when Mae_baselines.Methods initializes, which this
   reference forces (Mae_engine does the same; twice is harmless). *)
let () = Mae_baselines.Methods.ensure_registered ()

type addr = Tcp of { host : string; port : int } | Unix_sock of string

let pp_addr ppf = function
  | Tcp { host; port } -> Format.fprintf ppf "%s:%d" host port
  | Unix_sock path -> Format.fprintf ppf "unix:%s" path

(* "7788" | "host:7788" -> TCP (empty host = loopback); "unix:PATH" or
   anything with a slash -> Unix-domain socket path. *)
let parse_addr s =
  let unix_prefix = "unix:" in
  let n = String.length unix_prefix in
  if String.length s > n && String.equal (String.sub s 0 n) unix_prefix then
    Ok (Unix_sock (String.sub s n (String.length s - n)))
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | Some i -> begin
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p <= 65535 ->
            Ok (Tcp { host = (if host = "" then "127.0.0.1" else host); port = p })
        | _ -> Error (Printf.sprintf "bad port in address %S" s)
      end
    | None -> begin
        match int_of_string_opt s with
        | Some p when p >= 0 && p <= 65535 ->
            Ok (Tcp { host = "127.0.0.1"; port = p })
        | _ ->
            Error
              (Printf.sprintf
                 "bad address %S (want PORT, HOST:PORT or unix:PATH)" s)
      end

type slo_config = {
  latency_threshold_s : float;  (** a request is "good" iff at or under *)
  latency_target : float;  (** required good fraction for latency *)
  error_target : float;  (** required non-server-error fraction *)
  fast_window_s : float;
  slow_window_s : float;
  min_events : int;  (** fast-window events before /healthz may degrade *)
}

let default_slo =
  {
    latency_threshold_s = 0.25;
    latency_target = 0.99;
    error_target = 0.999;
    fast_window_s = 300.;
    slow_window_s = 3600.;
    min_events = 20;
  }

type config = {
  request_addr : addr;
  obs_addr : addr option;
  jobs : int;  (** engine domains per request batch *)
  registry : Mae_tech.Registry.t;
  trace_out : string option;  (** Chrome trace flushed at shutdown *)
  metrics_out : string option;  (** metrics dump flushed at shutdown *)
  max_line_bytes : int;
  span_retention : int;  (** recent-span window backing /tracez *)
  slo : slo_config;
  capture_slow_k : int;  (** slowest-k span trees kept per window *)
  capture_errored_cap : int;  (** errored span trees kept (FIFO ring) *)
  capture_max_spans : int;  (** spans kept per captured request *)
  inject_sleep_field : bool;
      (** honour a "sleep_s" request field by sleeping before
          estimation -- an overload injector for the serve smoke gate;
          never enable in production *)
  estimate_cache : bool;
      (** consult and populate the content-addressed estimate store
          ({!Mae_db.Cas}); repeats of a request batch are answered from
          it bit-for-bit *)
  store_journal : string option;
      (** append-only journal backing the estimate store: replayed at
          startup (a restarted daemon answers warm) and appended on
          every store insert *)
  store_out : string option;
      (** {!Mae_db.Store}-format snapshot of the estimate store written
          at shutdown (the floor-planner feed) *)
  on_ready : request_addr:addr -> obs_addr:addr option -> unit;
}

let default_config ~registry ~request_addr =
  {
    request_addr;
    obs_addr = None;
    jobs = 1;
    registry;
    trace_out = None;
    metrics_out = None;
    max_line_bytes = 8 * 1024 * 1024;
    span_retention = 4096;
    slo = default_slo;
    capture_slow_k = 8;
    capture_errored_cap = 32;
    capture_max_spans = 256;
    inject_sleep_field = false;
    estimate_cache = true;
    store_journal = None;
    store_out = None;
    on_ready = (fun ~request_addr:_ ~obs_addr:_ -> ());
  }

(* --- registry instruments (always live, like the engine's) --- *)

let requests_total =
  Metrics.counter "mae_serve_requests_total"
    ~help:"Estimation requests received (one JSON line each)"

let requests_ok =
  Metrics.counter "mae_serve_requests_ok_total"
    ~help:"Requests answered with ok:true (every module estimated)"

let requests_failed =
  Metrics.counter "mae_serve_requests_failed_total"
    ~help:"Requests answered with ok:false (parse, protocol or module error)"

let connections_total =
  Metrics.counter "mae_serve_connections_total"
    ~help:"Request-plane connections accepted"

let scrapes_total =
  Metrics.counter "mae_serve_scrapes_total"
    ~help:"Observability-plane HTTP requests answered"

let open_connections_gauge =
  Metrics.gauge "mae_serve_open_connections"
    ~help:"Request-plane connections currently open"

let request_latency =
  Metrics.histogram "mae_serve_request_seconds"
    ~help:"Per-request service latency (receipt of a line to its response)"

(* The same samples as the histogram, without bucket-edge
   quantization; exemplars carry the request ids of the slowest
   requests so /metrics cross-links to /tracez. *)
let request_latency_sketch =
  Mae_obs.Sketch.create "mae_serve_request_seconds_summary"
    ~help:"Per-request service latency quantiles (GK sketch)"

(* --- protocol: one JSON request line -> one JSON response line --- *)

type outcome = {
  response : Json.t;
  ok : bool;
  modules : int;
  modules_ok : int;
  rows_selected_total : int;
  cache_hits : int;
      (** kernel-cache traffic attributed to this request by the
          engine's domain-local accounting (not a before/after of the
          process-global counters, which other batches also move) *)
  cache_misses : int;
  cached : bool;
      (** every module of this request was answered from the estimate
          store (exact: the daemon runs one batch at a time, so the
          store-counter delta is this request's own traffic) *)
  server_error : bool;
      (** true when the failure is the server's fault (an estimator
          crash), as opposed to a malformed request or bad circuit --
          the distinction the error-budget SLO cares about *)
}

(* One JSON value per methodology outcome: the shared dimensions plus a
   few kind-specific extras. *)
let outcome_json (o : Mae.Methodology.outcome) =
  let dims = Mae.Methodology.dims o in
  let base =
    [
      ("ok", Json.Bool true);
      ("kind", Json.String (Mae.Methodology.kind o));
      ("area", Json.Number dims.Mae.Methodology.area);
      ("width", Json.Number dims.Mae.Methodology.width);
      ("height", Json.Number dims.Mae.Methodology.height);
    ]
  in
  let extra =
    match o with
    | Mae.Methodology.Stdcell { auto; sweep } ->
        [
          ("rows", Json.Number (Float.of_int auto.Mae.Estimate.rows));
          ( "sweep_rows",
            Json.Array
              (List.map
                 (fun (s : Mae.Estimate.stdcell) ->
                   Json.Number (Float.of_int s.Mae.Estimate.rows))
                 sweep) );
        ]
    | Mae.Methodology.Gatearray g ->
        [
          ("sites", Json.Number (Float.of_int g.Mae.Gatearray.sites));
          ("routable", Json.Bool g.Mae.Gatearray.routable);
        ]
    | Mae.Methodology.Fullcustom _ | Mae.Methodology.Scalar _ -> []
  in
  Json.Object (base @ extra)

let method_result_json (r : Mae.Driver.method_result) =
  ( Mae.Methodology.name r.methodology,
    match r.outcome with
    | Ok o -> outcome_json o
    | Error e ->
        Json.Object
          [
            ("ok", Json.Bool false);
            ("error", Json.String (Mae.Methodology.error_to_string e));
          ] )

let module_json = function
  | Ok (r : Mae.Driver.module_report) ->
      (* the flat legacy fields stay (when their methodologies ran and
         succeeded) so pre-registry clients keep working; the "methods"
         object is the full per-methodology story. *)
      let legacy =
        (match Mae.Driver.stdcell r with
        | Some sc ->
            [
              ("rows", Json.Number (Float.of_int sc.Mae.Estimate.rows));
              ("stdcell_area", Json.Number sc.Mae.Estimate.area);
              ("stdcell_height", Json.Number sc.Mae.Estimate.height);
              ("stdcell_width", Json.Number sc.Mae.Estimate.width);
            ]
        | None -> [])
        @ (match Mae.Driver.fullcustom_exact r with
          | Some f -> [ ("fullcustom_exact_area", Json.Number f.Mae.Estimate.area) ]
          | None -> [])
        @
        match Mae.Driver.fullcustom_average r with
        | Some f -> [ ("fullcustom_average_area", Json.Number f.Mae.Estimate.area) ]
        | None -> []
      in
      Json.Object
        ([
           ("name", Json.String r.circuit.Mae_netlist.Circuit.name);
           ("technology", Json.String r.circuit.Mae_netlist.Circuit.technology);
         ]
        @ legacy
        @ [
            ("methods", Json.Object (List.map method_result_json r.results));
            ( "method_errors",
              Json.Number
                (Float.of_int (List.length (Mae.Driver.method_failures r))) );
          ])
  | Error e ->
      Json.Object
        [ ("error", Json.String (Format.asprintf "%a" Mae_engine.pp_error e)) ]

let estimate_outcome config ?methods ?pool ?cache text =
  match Mae.Driver.string_circuits text with
  | Error e ->
      let msg = Format.asprintf "%a" Mae.Driver.pp_error e in
      ( [ ("ok", Json.Bool false); ("error", Json.String msg) ],
        false, 0, 0, 0, 0, 0, false, false )
  | Ok circuits -> begin
      match
        Mae_engine.run_circuits_with_stats ?methods ?pool ?cache
          ~jobs:config.jobs ~registry:config.registry circuits
      with
      | results, stats ->
          let modules = List.length results in
          let modules_ok = List.length (List.filter Result.is_ok results) in
          (* a module that crashed its estimator is a server fault; a
             driver error (unknown process, invalid circuit) is the
             request's *)
          let crashed =
            List.exists
              (function
                | Error (Mae_engine.Crashed _) -> true
                | Ok _ | Error _ -> false)
              results
          in
          let rows =
            List.fold_left
              (fun acc -> function
                | Ok (r : Mae.Driver.module_report) -> begin
                    match Mae.Driver.stdcell r with
                    | Some sc -> acc + sc.Mae.Estimate.rows
                    | None -> acc
                  end
                | Error _ -> acc)
              0 results
          in
          let cached =
            modules > 0
            && stats.Mae_engine.store_hits = modules
            && stats.Mae_engine.store_misses = 0
          in
          ( [
              ("ok", Json.Bool (modules_ok = modules));
              ("cached", Json.Bool cached);
              ("modules", Json.Array (List.map module_json results));
            ],
            modules_ok = modules, modules, modules_ok, rows,
            stats.Mae_engine.cache_hits, stats.Mae_engine.cache_misses,
            cached, crashed )
      | exception exn ->
          ( [
              ("ok", Json.Bool false);
              ( "error",
                Json.String ("estimator crashed: " ^ Printexc.to_string exn) );
            ],
            false, 0, 0, 0, 0, 0, false, true )
    end

(* The optional "methods" request field: a comma-separated string or an
   array of names, validated against the registry before estimation so a
   typo answers with a request error listing what is registered. *)
let parse_methods doc =
  match Json.member "methods" doc with
  | None -> Ok None
  | Some (Json.String s) -> begin
      match Mae.Methodology.selection_of_string s with
      | Ok names -> Ok (Some names)
      | Error e -> Error e
    end
  | Some (Json.Array items) -> begin
      let rec strings acc = function
        | [] -> Some (List.rev acc)
        | Json.String s :: rest -> strings (s :: acc) rest
        | _ -> None
      in
      match strings [] items with
      | None -> Error "\"methods\" entries must be strings"
      | Some [] -> Error "empty method set"
      | Some names -> begin
          match Mae.Methodology.selection_of_string (String.concat "," names) with
          | Ok names -> Ok (Some names)
          | Error e -> Error e
        end
    end
  | Some _ -> Error "\"methods\" must be a string or an array of strings"

let process_request config ?pool ?cache ~seq line =
  let client_id, body =
    match Json.parse line with
    | Error e ->
        (Json.Null, ([ ("ok", Json.Bool false);
                       ("error", Json.String ("bad request JSON: " ^ e)) ],
                     false, 0, 0, 0, 0, 0, false, false))
    | Ok doc -> begin
        let id = Option.value (Json.member "id" doc) ~default:Json.Null in
        (* overload injector for the smoke gate: only a config built in
           process (never the CLI) can turn this on *)
        (if config.inject_sleep_field then
           match Json.member "sleep_s" doc with
           | Some (Json.Number s) when s > 0. && s <= 5. -> Unix.sleepf s
           | _ -> ());
        match parse_methods doc with
        | Error e ->
            (id, ([ ("ok", Json.Bool false);
                    ("error", Json.String ("bad \"methods\": " ^ e)) ],
                  false, 0, 0, 0, 0, 0, false, false))
        | Ok methods -> begin
            match Json.member "hdl" doc with
            | Some (Json.String text) ->
                (id, estimate_outcome config ?methods ?pool ?cache text)
            | Some _ ->
                (id, ([ ("ok", Json.Bool false);
                        ("error", Json.String "\"hdl\" must be a string") ],
                      false, 0, 0, 0, 0, 0, false, false))
            | None ->
                (id, ([ ("ok", Json.Bool false);
                        ("error", Json.String "request needs an \"hdl\" field") ],
                      false, 0, 0, 0, 0, 0, false, false))
          end
      end
  in
  let fields, ok, modules, modules_ok, rows_selected_total, cache_hits,
      cache_misses, cached, server_error =
    body
  in
  let response =
    Json.Object
      ((("seq", Json.Number (Float.of_int seq))
        :: (match client_id with Json.Null -> [] | id -> [ ("id", id) ]))
      @ fields)
  in
  { response; ok; modules; modules_ok; rows_selected_total; cache_hits;
    cache_misses; cached; server_error }

(* --- connection bookkeeping --- *)

type kind = Request_plane | Obs_plane

type conn = {
  fd : Unix.file_descr;
  kind : kind;
  rbuf : Buffer.t;
  peer : string;
}

(* Write the whole buffer or report failure.  A signal landing mid-frame
   must not drop the rest of a response (the old catch-all did exactly
   that), so EINTR retries at the same offset; EAGAIN on a non-blocking
   peer waits for writability (bounded, so one stuck client cannot hang
   the daemon forever).  Any other error is a dead peer: false. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  (* one write per iteration so a retry resumes at the exact offset the
     short or interrupted write left off *)
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
          match Unix.select [] [ fd ] [] 30.0 with
          | _, [ _ ], _ -> go off
          | _ -> false (* writability never came: give up on the peer *)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception Unix.Unix_error _ -> false)
      | exception Unix.Unix_error _ -> false
  in
  go 0

(* --- the HTTP/1.0 observability plane --- *)

let http_response ?(status = "200 OK") ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let counter_value name =
  match Metrics.find_counter name with
  | Some c -> Metrics.counter_value c
  | None -> 0

type state = {
  config : config;
  started : float;  (** wall clock, for display (buildinfo started_ts) *)
  started_mono : float;  (** monotonic, for uptime arithmetic *)
  slo_latency : Mae_obs.Slo.t;
  slo_errors : Mae_obs.Slo.t;
  pool : Mae_engine.Pool.t option;
      (** persistent worker domains when [config.jobs >= 2]: spawned
          once at startup so per-request batches skip domain creation *)
  cas : Mae_db.Cas.t option;  (** the estimate store, when enabled *)
  mutable draining : bool;
  mutable conns : conn list;
  mutable next_seq : int;
}

let uptime_s st = Mae_obs.Clock.monotonic () -. st.started_mono

let healthz_body st ~slo_healthy =
  let num n = Json.Number (Float.of_int n) in
  let status =
    if st.draining then "draining"
    else if not slo_healthy then "degraded"
    else "ok"
  in
  Json.encode
    (Json.Object
       [
         ("status", Json.String status);
         ("slo_healthy", Json.Bool slo_healthy);
         ("uptime_s", Json.Number (uptime_s st));
         ("pid", num (Unix.getpid ()));
         ("jobs", num st.config.jobs);
         ("recommended_domains", num (Mae_engine.default_jobs ()));
         ("telemetry", Json.Bool (Mae_obs.enabled ()));
         ( "log_threshold",
           match Log.current_threshold () with
           | None -> Json.Null
           | Some l -> Json.String (Log.level_name l) );
         ("requests_total", num (Metrics.counter_value requests_total));
         ("requests_ok", num (Metrics.counter_value requests_ok));
         ("requests_failed", num (Metrics.counter_value requests_failed));
         ( "open_connections",
           num
             (List.length
                (List.filter (fun c -> c.kind = Request_plane) st.conns)) );
         ( "engine",
           Json.Object
             [
               ("modules_total", num (counter_value "mae_engine_modules_total"));
               ("modules_ok", num (counter_value "mae_engine_modules_ok_total"));
               ( "modules_failed",
                 num (counter_value "mae_engine_modules_failed_total") );
             ] );
       ])
  ^ "\n"

let buildinfo_body st =
  Json.encode
    (Json.Object
       [
         ("name", Json.String "mae");
         ("version", Json.String "1.0.0");
         ( "paper",
           Json.String
             "Chen & Bushnell, A Module Area Estimator for VLSI Layout, DAC'88"
         );
         ("ocaml", Json.String Sys.ocaml_version);
         ("word_size", Json.Number (Float.of_int Sys.word_size));
         ("os_type", Json.String Sys.os_type);
         ("pid", Json.Number (Float.of_int (Unix.getpid ())));
         ("started_ts", Json.Number st.started);
       ])
  ^ "\n"

let methods_body () =
  Json.encode
    (Json.Object
       [
         ( "default",
           Json.Array
             (List.map
                (fun n -> Json.String n)
                Mae.Methodology.default_names) );
         ( "methods",
           Json.Array
             (List.map
                (fun t ->
                  Json.Object
                    [
                      ("name", Json.String (Mae.Methodology.name t));
                      ("doc", Json.String (Mae.Methodology.doc t));
                    ])
                (Mae.Methodology.all ())) );
       ])
  ^ "\n"

let span_json (e : Mae_obs.Span.event) =
  Json.Object
    [
      ("name", Json.String e.name);
      ("domain", Json.Number (Float.of_int e.domain));
      ("depth", Json.Number (Float.of_int e.depth));
      (* span timestamps are monotonic; report an approximate epoch
         time for readers and keep the raw monotonic instant for
         ordering against other spans *)
      ("ts", Json.Number (Mae_obs.Clock.wall_of_monotonic e.ts));
      ("ts_mono", Json.Number e.ts);
      ("dur_s", Json.Number e.dur);
      ("self_s", Json.Number e.self);
    ]

let capture_json (c : Mae_obs.Capture.capture) =
  Json.Object
    ([
       ("rid", Json.String c.cap_rid);
       ( "kind",
         Json.String
           (match c.cap_kind with `Errored -> "errored" | `Slow -> "slow") );
       ("ts", Json.Number c.cap_wall);
       ("latency_s", Json.Number c.cap_latency);
       ("gc_s", Json.Number c.cap_gc_s);
     ]
    @ (match c.cap_error with
      | None -> []
      | Some e -> [ ("error", Json.String e) ])
    @ [ ("spans", Json.Array (List.map span_json c.cap_spans)) ])

let tracez_body st =
  let events = Mae_obs.Span.events () in
  let recent =
    let by_ts_desc =
      List.sort
        (fun (a : Mae_obs.Span.event) (b : Mae_obs.Span.event) ->
          Float.compare b.ts a.ts)
        events
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    List.rev (take 100 by_ts_desc)
  in
  let flame_json (r : Mae_obs.Trace.flame_row) =
    Json.Object
      [
        ("span", Json.String r.span_name);
        ("calls", Json.Number (Float.of_int r.calls));
        ("total_s", Json.Number r.total_s);
        ("self_s", Json.Number r.self_s);
      ]
  in
  Json.encode
    (Json.Object
       [
         ("telemetry", Json.Bool (Mae_obs.enabled ()));
         ( "retention",
           Json.Number (Float.of_int st.config.span_retention) );
         (* tail-based capture: the span trees of errored and
            slowest-k requests, the ones worth keeping; request ids
            here match the exemplar labels in /metrics *)
         ( "captures",
           Json.Array (List.map capture_json (Mae_obs.Capture.captures ())) );
         ( "capture_resident_spans",
           Json.Number (Float.of_int (Mae_obs.Capture.resident_spans ())) );
         ( "capture_max_resident_spans",
           Json.Number (Float.of_int (Mae_obs.Capture.max_resident_spans ()))
         );
         ("recent_spans", Json.Array (List.map span_json recent));
         ("flame", Json.Array (List.map flame_json (Mae_obs.Trace.flame ())));
       ])
  ^ "\n"

let slo_body () = Json.encode (Mae_obs.Slo.to_json ()) ^ "\n"

(* /runtimez: the runtime lens document -- sampler state, per-domain
   GC statistics, process telemetry.  Served even when the lens is
   off (the document says so and still carries the process section). *)
let runtimez_body () = Json.encode (Mae_obs.Runtime.to_json ()) ^ "\n"

(* /statusz: the one-page human summary -- uptime, traffic, cache,
   objectives, latency quantiles, captured tails. *)
let statusz_body st =
  let b = Buffer.create 1024 in
  let reqs = Metrics.counter_value requests_total in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "mae serve status";
  line "";
  line "uptime_s: %.1f  pid: %d  jobs: %d  telemetry: %s  draining: %b"
    (uptime_s st) (Unix.getpid ()) st.config.jobs
    (if Mae_obs.enabled () then "on" else "off")
    st.draining;
  line "requests: %d total, %d ok, %d failed; open connections: %d" reqs
    (Metrics.counter_value requests_ok)
    (Metrics.counter_value requests_failed)
    (List.length (List.filter (fun c -> c.kind = Request_plane) st.conns));
  let hits = counter_value "mae_kernel_cache_hits_total" in
  let misses = counter_value "mae_kernel_cache_misses_total" in
  let lookups = hits + misses in
  line "engine: %d modules (%d ok); kernel cache %d lookups, hit ratio %s"
    (counter_value "mae_engine_modules_total")
    (counter_value "mae_engine_modules_ok_total")
    lookups
    (if lookups = 0 then "n/a"
     else Printf.sprintf "%.1f%%" (100. *. float_of_int hits /. float_of_int lookups));
  line "";
  List.iter
    (fun (r : Mae_obs.Slo.report) ->
      let kind =
        match r.r_spec.kind with
        | Mae_obs.Slo.Latency th -> Printf.sprintf "latency <= %gms" (th *. 1e3)
        | Mae_obs.Slo.Error_rate -> "error rate"
      in
      line "slo %s [%s, target %g%%]: fast burn %.2f (%d/%d bad), slow burn %.2f -- %s"
        r.r_spec.slo_name kind
        (100. *. r.r_spec.target)
        r.fast.burn_rate r.fast.bad
        (r.fast.good + r.fast.bad)
        r.slow.burn_rate
        (if r.r_healthy then "healthy" else "BUDGET EXHAUSTED"))
    (Mae_obs.Slo.reports ());
  line "";
  let s = Mae_obs.Sketch.snapshot request_latency_sketch in
  if s.n = 0 then line "request latency: no samples yet"
  else begin
    let q p =
      match List.assoc_opt p s.quantiles with
      | Some v -> Printf.sprintf "%.0fus" (v *. 1e6)
      | None -> "-"
    in
    line "request latency: p50 %s  p90 %s  p95 %s  p99 %s  p999 %s (n=%d, eps=%g)"
      (q 0.5) (q 0.9) (q 0.95) (q 0.99) (q 0.999) s.n s.eps
  end;
  let caps = Mae_obs.Capture.captures () in
  let errored =
    List.length (List.filter (fun c -> c.Mae_obs.Capture.cap_kind = `Errored) caps)
  in
  line "captures: %d errored, %d slow (resident spans %d/%d)" errored
    (List.length caps - errored)
    (Mae_obs.Capture.resident_spans ())
    (Mae_obs.Capture.max_resident_spans ());
  if Mae_obs.Runtime.running () then begin
    let q p =
      match Mae_obs.Runtime.pause_quantile p with
      | Some v -> Printf.sprintf "%.0fus" (v *. 1e6)
      | None -> "-"
    in
    line "gc: %d pauses (p50 %s, p99 %s, max %s) across %d domains -- /runtimez"
      (Mae_obs.Runtime.pause_count ())
      (q 0.5) (q 0.99)
      (match Mae_obs.Runtime.max_pause_seconds () with
      | Some v -> Printf.sprintf "%.0fus" (v *. 1e6)
      | None -> "-")
      (List.length (Mae_obs.Runtime.domains ()))
  end;
  Buffer.contents b

let handle_http st raw =
  Metrics.incr scrapes_total;
  let request_line =
    match String.index_opt raw '\r' with
    | Some i -> String.sub raw 0 i
    | None -> (
        match String.index_opt raw '\n' with
        | Some i -> String.sub raw 0 i
        | None -> raw)
  in
  match String.split_on_char ' ' request_line with
  | [ "GET"; path; _version ] -> begin
      let path =
        match String.index_opt path '?' with
        | Some i -> String.sub path 0 i
        | None -> path
      in
      match path with
      | "/metrics" ->
          http_response ~content_type:"text/plain; version=0.0.4"
            (Metrics.to_prometheus ())
      | "/healthz" ->
          (* liveness degrades to 503 when the fast-window error budget
             of any objective is exhausted: load balancers shed load
             from an instance that is up but missing its SLOs. *)
          let slo_healthy = Mae_obs.Slo.healthy () in
          let status =
            if (not st.draining) && not slo_healthy then
              "503 Service Unavailable"
            else "200 OK"
          in
          http_response ~status ~content_type:"application/json"
            (healthz_body st ~slo_healthy)
      | "/slo" ->
          http_response ~content_type:"application/json" (slo_body ())
      | "/statusz" ->
          http_response ~content_type:"text/plain" (statusz_body st)
      | "/buildinfo" ->
          http_response ~content_type:"application/json" (buildinfo_body st)
      | "/tracez" ->
          http_response ~content_type:"application/json" (tracez_body st)
      | "/methods" ->
          http_response ~content_type:"application/json" (methods_body ())
      | "/runtimez" ->
          http_response ~content_type:"application/json" (runtimez_body ())
      | _ ->
          http_response ~status:"404 Not Found" ~content_type:"text/plain"
            "not found; try /metrics /healthz /slo /statusz /buildinfo \
             /tracez /methods /runtimez\n"
    end
  | "GET" :: _ ->
      http_response ~status:"400 Bad Request" ~content_type:"text/plain"
        "bad request line\n"
  | _ ->
      http_response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
        "only GET is served here\n"

(* --- the request plane --- *)

let answer_line st conn line =
  let seq = st.next_seq in
  st.next_seq <- seq + 1;
  let rid = "r" ^ string_of_int seq in
  Log.with_request_id rid @@ fun () ->
  Metrics.incr requests_total;
  let t0 = Mae_obs.Clock.monotonic () in
  let outcome =
    Mae_obs.Span.with_ ~name:"serve.request" ~attrs:[ ("rid", rid) ] (fun () ->
        process_request st.config ?pool:st.pool ?cache:st.cas ~seq line)
  in
  let latency = Mae_obs.Clock.monotonic () -. t0 in
  Metrics.observe request_latency latency;
  (* the sketch carries the request id as an exemplar so a bad
     quantile in /metrics links back to a trace in /tracez *)
  Mae_obs.Sketch.observe_exemplar request_latency_sketch ~label:rid latency;
  Mae_obs.Slo.record_latency st.slo_latency latency;
  (* only server faults (estimator crashes) burn the error budget;
     malformed client requests are the client's problem *)
  Mae_obs.Slo.record st.slo_errors ~good:(not outcome.server_error);
  let error =
    if outcome.ok then None
    else begin
      match Json.member "error" outcome.response with
      | Some (Json.String e) -> Some e
      | _ -> Some "request failed"
    end
  in
  (* GC pause time that landed inside this request's window, from the
     runtime lens; 0 (one atomic check) when the lens is off *)
  let gc_s = Mae_obs.Runtime.pause_seconds_since t0 in
  Mae_obs.Capture.record ~rid ~ok:outcome.ok ?error ~gc_s ~latency ~since:t0 ();
  Metrics.incr (if outcome.ok then requests_ok else requests_failed);
  Log.info ~event:"serve.request"
    [
      ("seq", Log.Int seq);
      ("peer", Log.Str conn.peer);
      ("ok", Log.Bool outcome.ok);
      ("modules", Log.Int outcome.modules);
      ("modules_ok", Log.Int outcome.modules_ok);
      ("rows_selected", Log.Int outcome.rows_selected_total);
      ("latency_s", Log.Float latency);
      ("gc_s", Log.Float gc_s);
      ("cache_hits", Log.Int outcome.cache_hits);
      ("cache_misses", Log.Int outcome.cache_misses);
      ("cached", Log.Bool outcome.cached);
      ("bytes_in", Log.Int (String.length line));
    ];
  ignore (write_all conn.fd (Json.encode outcome.response ^ "\n"))

(* Consume every complete line in the connection buffer, in order. *)
let drain_complete_lines st conn =
  let data = Buffer.contents conn.rbuf in
  let rec go start =
    match String.index_from_opt data start '\n' with
    | None ->
        Buffer.clear conn.rbuf;
        Buffer.add_substring conn.rbuf data start (String.length data - start)
    | Some nl ->
        let line = String.sub data start (nl - start) in
        let line =
          (* tolerate CRLF clients *)
          if String.length line > 0 && line.[String.length line - 1] = '\r'
          then String.sub line 0 (String.length line - 1)
          else line
        in
        if String.length line > 0 then answer_line st conn line;
        go (nl + 1)
  in
  go 0

(* --- sockets --- *)

let socket_of_addr = function
  | Tcp { host; port } ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Ok (fd, Unix.ADDR_INET (inet, port))
  | Unix_sock path ->
      let stale =
        if Sys.file_exists path then begin
          match (Unix.stat path).Unix.st_kind with
          | Unix.S_SOCK ->
              Sys.remove path;
              Ok ()
          | _ -> Error (Printf.sprintf "%s exists and is not a socket" path)
        end
        else Ok ()
      in
      begin
        match stale with
        | Error _ as e -> e
        | Ok () ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Ok (fd, Unix.ADDR_UNIX path)
      end

let bound_addr fd = function
  | Unix_sock path -> Unix_sock path
  | Tcp { host; port = _ } -> (
      (* learn the kernel-assigned port when binding port 0 *)
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp { host; port }
      | _ -> Tcp { host; port = 0 })

let listen_on addr =
  match socket_of_addr addr with
  | Error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Format.asprintf "cannot listen on %a: %s" pp_addr addr
           (Unix.error_message e))
  | Ok (fd, sockaddr) -> (
      match
        Unix.bind fd sockaddr;
        Unix.listen fd 64
      with
      | () -> Ok (fd, bound_addr fd addr)
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close fd;
          Error
            (Format.asprintf "cannot listen on %a: %s" pp_addr addr
               (Unix.error_message e)))

let unlink_unix_addr = function
  | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ()

(* --- shutdown flag --- *)

let stop_requested = Atomic.make false

let install_signal_handlers () =
  let note _ = Atomic.set stop_requested true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle note)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle note)
   with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

(* --- the loop --- *)

let close_conn st conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  st.conns <- List.filter (fun c -> c.fd != conn.fd) st.conns;
  if conn.kind = Request_plane then
    Metrics.set open_connections_gauge
      (Float.of_int
         (List.length (List.filter (fun c -> c.kind = Request_plane) st.conns)))

let accept_conn st listener kind =
  match Unix.accept listener with
  | fd, peer_addr ->
      let peer =
        match peer_addr with
        | Unix.ADDR_INET (a, p) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX _ -> "unix"
      in
      (* non-blocking so the read loop can drain the socket fully and
         stop exactly at EAGAIN instead of risking a block *)
      (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
      let conn = { fd; kind; rbuf = Buffer.create 512; peer } in
      st.conns <- conn :: st.conns;
      if kind = Request_plane then begin
        Metrics.incr connections_total;
        Metrics.set open_connections_gauge
          (Float.of_int
             (List.length
                (List.filter (fun c -> c.kind = Request_plane) st.conns)))
      end
  | exception Unix.Unix_error _ -> ()

let http_request_complete raw =
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i =
      i + nn <= nh && (String.equal (String.sub hay i nn) needle || at (i + 1))
    in
    at 0
  in
  contains_sub raw "\r\n\r\n" || contains_sub raw "\n\n"

let service_readable st conn =
  let chunk = Bytes.create 65536 in
  (* Loop on short reads: the socket is non-blocking, so keep reading
     until EAGAIN (a partial chunk is taken as "drained" too -- anything
     left wakes the next select) and retry EINTR at the same spot rather
     than dropping the wakeup.  The old single-shot read serviced at
     most 64 KiB per select round and treated a signal as "no data". *)
  let rec fill total =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n ->
        Buffer.add_subbytes conn.rbuf chunk 0 n;
        if n = Bytes.length chunk then fill (total + n) else `Data (total + n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill total
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if total = 0 then `Nothing else `Data total
    | exception Unix.Unix_error _ -> `Err
  in
  match fill 0 with
  | `Nothing -> ()
  | `Err -> close_conn st conn
  | `Eof ->
      (* EOF: answer whatever complete lines are already buffered, then
         close.  (A client that shut down only its write side still
         reads its last responses.) *)
      if conn.kind = Request_plane then drain_complete_lines st conn;
      close_conn st conn
  | `Data _ -> begin
      match conn.kind with
      | Request_plane ->
          if Buffer.length conn.rbuf > st.config.max_line_bytes then begin
            ignore
              (write_all conn.fd
                 (Json.encode
                    (Json.Object
                       [
                         ("ok", Json.Bool false);
                         ( "error",
                           Json.String
                             (Printf.sprintf "request line exceeds %d bytes"
                                st.config.max_line_bytes) );
                       ])
                 ^ "\n"));
            close_conn st conn
          end
          else drain_complete_lines st conn
      | Obs_plane ->
          let raw = Buffer.contents conn.rbuf in
          if http_request_complete raw || Buffer.length conn.rbuf > 65536 then begin
            ignore (write_all conn.fd (handle_http st raw));
            close_conn st conn
          end
    end

let final_flush st =
  let reqs = Metrics.counter_value requests_total in
  Log.info ~event:"serve.shutdown"
    [
      ("uptime_s", Log.Float (uptime_s st));
      ("requests_total", Log.Int reqs);
      ("requests_ok", Log.Int (Metrics.counter_value requests_ok));
      ("requests_failed", Log.Int (Metrics.counter_value requests_failed));
    ];
  begin
    match st.config.metrics_out with
    | None -> ()
    | Some path ->
        let result =
          if Filename.check_suffix path ".json" then Metrics.write_json ~path
          else Metrics.write_prometheus ~path
        in
        (match result with
        | Ok () -> ()
        | Error e ->
            Log.error ~event:"serve.flush_failed"
              [ ("artifact", Log.Str "metrics"); ("error", Log.Str e) ])
  end;
  match st.config.trace_out with
  | None -> ()
  | Some path -> (
      match Mae_obs.Trace.write_chrome ~path with
      | Ok () -> ()
      | Error e ->
          Log.error ~event:"serve.flush_failed"
            [ ("artifact", Log.Str "trace"); ("error", Log.Str e) ])

let run (config : config) =
  match listen_on config.request_addr with
  | Error _ as e -> e
  | Ok (req_listener, request_addr) -> begin
      let obs =
        match config.obs_addr with
        | None -> Ok None
        | Some addr -> (
            match listen_on addr with
            | Ok (fd, bound) -> Ok (Some (fd, bound))
            | Error _ as e -> e)
      in
      match obs with
      | Error e ->
          Unix.close req_listener;
          unlink_unix_addr config.request_addr;
          Error e
      | Ok obs ->
          let obs_listener = Option.map fst obs in
          let obs_addr = Option.map snd obs in
          install_signal_handlers ();
          Atomic.set stop_requested false;
          (* tracing in a resident process keeps a bounded recent
             window; the final dump and /tracez both read it. *)
          Mae_obs.Span.set_retention (Some config.span_retention);
          if Option.is_some config.trace_out then Mae_obs.set_enabled true;
          (* the runtime lens rides with telemetry: GC pause sketches
             per domain, /runtimez, gc.* spans in the final trace *)
          if Mae_obs.enabled () then ignore (Mae_obs.Runtime.start ());
          let pool =
            (* [jobs = 0] means "the host's recommendation", like the
               engine's own resolution; 0 or 1 worker needs no pool *)
            let jobs =
              if config.jobs = 0 then Mae_engine.default_jobs ()
              else config.jobs
            in
            if jobs >= 2 then Some (Mae_engine.Pool.create ~domains:(jobs - 1))
            else None
          in
          (* declarative objectives over the request plane; both ride
             the same rolling multi-window burn-rate rings *)
          let slo_latency =
            Mae_obs.Slo.register
              (Mae_obs.Slo.spec
                 ~description:
                   (Printf.sprintf "%.0f%% of requests under %gms"
                      (100. *. config.slo.latency_target)
                      (config.slo.latency_threshold_s *. 1e3))
                 ~kind:(Mae_obs.Slo.Latency config.slo.latency_threshold_s)
                 ~target:config.slo.latency_target
                 ~fast_window_s:config.slo.fast_window_s
                 ~slow_window_s:config.slo.slow_window_s
                 ~min_events:config.slo.min_events "mae_serve_latency_slo")
          in
          let slo_errors =
            Mae_obs.Slo.register
              (Mae_obs.Slo.spec
                 ~description:
                   (Printf.sprintf "%.1f%% of requests without server errors"
                      (100. *. config.slo.error_target))
                 ~kind:Mae_obs.Slo.Error_rate ~target:config.slo.error_target
                 ~fast_window_s:config.slo.fast_window_s
                 ~slow_window_s:config.slo.slow_window_s
                 ~min_events:config.slo.min_events "mae_serve_errors_slo")
          in
          Mae_obs.Capture.configure ~slow_k:config.capture_slow_k
            ~errored_cap:config.capture_errored_cap
            ~max_spans:config.capture_max_spans ();
          let cas =
            if config.estimate_cache then begin
              let cas = Mae_db.Cas.create () in
              (match config.store_journal with
              | None -> ()
              | Some path -> (
                  match Mae_db.Cas.open_journal cas ~path with
                  | Ok (loaded, skipped) ->
                      Log.info ~event:"serve.store_warm"
                        [
                          ("journal", Log.Str path);
                          ("loaded", Log.Int loaded);
                          ("skipped", Log.Int skipped);
                        ]
                  | Error e ->
                      (* estimation must not die with the journal; run
                         cold and say so loudly *)
                      Log.error ~event:"serve.store_journal_failed"
                        [ ("journal", Log.Str path); ("error", Log.Str e) ]));
              Some cas
            end
            else None
          in
          let st =
            {
              config;
              started = Unix.gettimeofday ();
              started_mono = Mae_obs.Clock.monotonic ();
              pool;
              cas;
              draining = false;
              conns = [];
              next_seq = 1;
              slo_latency;
              slo_errors;
            }
          in
          Log.info ~event:"serve.start"
            ([
               ("addr", Log.Str (Format.asprintf "%a" pp_addr request_addr));
               ("jobs", Log.Int config.jobs);
               ("pid", Log.Int (Unix.getpid ()));
             ]
            @
            match obs_addr with
            | None -> []
            | Some a ->
                [ ("obs_addr", Log.Str (Format.asprintf "%a" pp_addr a)) ]);
          config.on_ready ~request_addr ~obs_addr;
          let rec loop () =
            if Atomic.get stop_requested then ()
            else begin
              let listeners =
                req_listener :: Option.to_list obs_listener
              in
              let fds = listeners @ List.map (fun c -> c.fd) st.conns in
              match Unix.select fds [] [] 1.0 with
              | readable, _, _ ->
                  List.iter
                    (fun fd ->
                      if fd == req_listener then
                        accept_conn st req_listener Request_plane
                      else
                        match obs_listener with
                        | Some l when fd == l -> accept_conn st l Obs_plane
                        | _ -> (
                            match
                              List.find_opt (fun c -> c.fd == fd) st.conns
                            with
                            | Some conn -> service_readable st conn
                            | None -> ()))
                    readable;
                  loop ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            end
          in
          loop ();
          (* drain: no new connections; answer every request line already
             received, give scrape connections their response, close all. *)
          st.draining <- true;
          Unix.close req_listener;
          Option.iter Unix.close obs_listener;
          List.iter
            (fun conn ->
              match conn.kind with
              | Request_plane -> drain_complete_lines st conn
              | Obs_plane ->
                  let raw = Buffer.contents conn.rbuf in
                  if http_request_complete raw then
                    ignore (write_all conn.fd (handle_http st raw)))
            st.conns;
          List.iter (fun c -> close_conn st c) st.conns;
          unlink_unix_addr config.request_addr;
          Option.iter unlink_unix_addr config.obs_addr;
          Option.iter Mae_engine.Pool.shutdown st.pool;
          (match st.cas with
          | None -> ()
          | Some cas ->
              (match config.store_out with
              | None -> ()
              | Some path -> (
                  match Mae_db.Store.save (Mae_db.Cas.to_store cas) ~path with
                  | Ok () ->
                      Log.info ~event:"serve.store_flush"
                        [ ("store", Log.Str path) ]
                  | Error e ->
                      Log.error ~event:"serve.flush_failed"
                        [ ("artifact", Log.Str "store"); ("error", Log.Str e) ]));
              Mae_db.Cas.close_journal cas);
          (* join the sampler and drain the cursor before the trace
             flush so the export carries the last GC windows *)
          Mae_obs.Runtime.stop ();
          final_flush st;
          Ok ()
    end

module Top = Top
