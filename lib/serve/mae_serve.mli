(** The resident estimation service behind [mae serve].

    A single-threaded select loop runs two planes:

    - {e request plane}: line-delimited JSON over TCP or a Unix-domain
      socket.  One request line in, one response line out, answered
      through {!Mae_engine} (so the kernel cache and domain pool
      apply).  A request is
      [{"hdl": "<module text>", "id": <any>, "methods": <set>}], where
      the optional ["methods"] is a comma-separated string or an array
      of registry names (see {!Mae.Methodology}; the aliases
      ["default"] and ["all"] work) and defaults to the classic
      stdcell + full-custom set.  The response carries a
      server-assigned monotone ["seq"], the echoed ["id"], ["ok"], and
      one entry per module: the flat legacy fields ([rows],
      [stdcell_area], [fullcustom_exact_area], ...) when those
      methodologies ran, plus a ["methods"] object with one
      [{"ok", "kind", "area", "width", "height", ...}] value (or
      [{"ok": false, "error"}]) per selected methodology.
    - {e observability plane} (optional second socket): HTTP/1.0
      [GET /metrics] (Prometheus text from the {!Mae_obs.Metrics}
      registry, including the per-methodology
      [mae_method_<name>_runs_total] / [..._errors_total] counters and
      [mae_method_<name>_seconds] latency histograms), [/healthz]
      (liveness + engine/domain status), [/buildinfo], [/tracez]
      (recent-span snapshot + flame rows), and [/methods] (the
      methodology registry: names, docs, and the default set).

    Every request emits one [serve.request] access-log record through
    {!Mae_obs.Log} -- latency, rows selected, kernel-cache hit deltas
    -- scoped to request id [r<seq>].  SIGINT/SIGTERM stop the accept
    loop, drain request lines already received, emit a final
    [serve.shutdown] record and flush the configured metrics/trace
    dumps. *)

type addr = Tcp of { host : string; port : int } | Unix_sock of string

val pp_addr : Format.formatter -> addr -> unit

val parse_addr : string -> (addr, string) result
(** ["7788"] and ["host:7788"] are TCP (empty host means loopback, TCP
    port [0] lets the kernel pick -- the bound port is reported via
    [on_ready]); ["unix:PATH"] or any string containing a slash is a
    Unix-domain socket path. *)

type config = {
  request_addr : addr;
  obs_addr : addr option;
  jobs : int;
      (** engine domains per request batch; [>= 2] spawns a persistent
          {!Mae_engine.Pool} at startup that every request reuses, and
          [0] means the host's recommended domain count *)
  registry : Mae_tech.Registry.t;
  trace_out : string option;  (** Chrome trace flushed at shutdown *)
  metrics_out : string option;  (** metrics dump flushed at shutdown *)
  max_line_bytes : int;
  span_retention : int;  (** recent-span window backing [/tracez] *)
  on_ready : request_addr:addr -> obs_addr:addr option -> unit;
      (** called once both listeners are bound, with kernel-assigned
          ports resolved *)
}

val default_config :
  registry:Mae_tech.Registry.t -> request_addr:addr -> config
(** [jobs = 1], no obs plane, no dumps, 8 MiB line cap, 4096-span
    retention, no-op [on_ready]. *)

val run : config -> (unit, string) result
(** Serve until SIGINT/SIGTERM, then drain and flush.  [Error] means
    the listeners could not be bound (nothing was served).  Installs
    handlers for SIGINT/SIGTERM and ignores SIGPIPE. *)
