(** The resident estimation service behind [mae serve].

    A single-threaded select loop runs two planes over one transport:

    - {e request plane}: line-delimited JSON {e or} HTTP
      ([POST /estimate]) over TCP or a Unix-domain socket, with
      HTTP/1.1 keep-alive (Content-Length framing; HTTP/1.0 closes per
      request unless the client asks otherwise).  A request is
      [{"hdl": "<module text>", "id": <any>, "methods": <set>}], where
      the optional ["methods"] is a comma-separated string or an array
      of registry names (see {!Mae.Methodology}; the aliases
      ["default"] and ["all"] work) and defaults to the classic
      stdcell + full-custom set.  The response carries a
      server-assigned monotone ["seq"], the echoed ["id"], ["ok"], and
      one entry per module: the flat legacy fields ([rows],
      [stdcell_area], [fullcustom_exact_area], ...) when those
      methodologies ran, plus a ["methods"] object with one
      [{"ok", "kind", "area", "width", "height", ...}] value (or
      [{"ok": false, "error"}]) per selected methodology.  Requests
      queue through {!Dispatch}: concurrent arrivals coalesce into
      engine batches, and past the queue watermark a request is shed
      with ["ok": false] (HTTP [503] + [Retry-After]) without burning
      either SLO's budget.
    - {e observability plane} (optional second socket; the same
      documents also answer to [GET] on the request plane):
      [GET /metrics] (Prometheus text from the {!Mae_obs.Metrics}
      registry -- counters, histograms, and the {!Mae_obs.Sketch}
      quantile summaries with request-id exemplars), [/healthz]
      (liveness + engine/domain status; answers
      [503 Service Unavailable] while any SLO's fast-window error
      budget is exhausted), [/slo] (burn-rate reports for every
      registered objective, JSON), [/statusz] (one-page human-readable
      status: uptime, traffic, cache hit ratio, SLO burn table,
      latency quantiles, captured tails), [/buildinfo], [/tracez]
      (recent-span snapshot + flame rows + tail-based captures: full
      span trees of errored and slowest-k requests), and [/methods]
      (the methodology registry: names, docs, and the default set).

    Every request emits one [serve.request] access-log record through
    {!Mae_obs.Log} -- latency, rows selected, kernel-cache hit deltas
    -- scoped to request id [r<seq>], feeds the
    [mae_serve_request_seconds_summary] latency sketch (with the
    request id as exemplar), and burns the two built-in objectives
    ([mae_serve_latency_slo], [mae_serve_errors_slo]; only estimator
    crashes count against the error budget, malformed client input
    does not).  SIGINT/SIGTERM stop the accept loop, drain request
    frames already received, emit a final [serve.shutdown] record and
    flush the configured metrics/trace dumps.

    The implementation is layered -- {!Protocol} (the pure codec),
    {!Transport} (fds, buffers, timeouts), {!Dispatch} (queueing,
    batching, admission control, per-request bookkeeping) -- and this
    module is the wiring plus the observability documents. *)

type addr = Transport.addr =
  | Tcp of { host : string; port : int }
  | Unix_sock of string

val pp_addr : Format.formatter -> addr -> unit

val parse_addr : string -> (addr, string) result
(** ["7788"] and ["host:7788"] are TCP (empty host means loopback, TCP
    port [0] lets the kernel pick -- the bound port is reported via
    [on_ready]); ["unix:PATH"] or any string containing a slash is a
    Unix-domain socket path. *)

type slo_config = {
  latency_threshold_s : float;
      (** a request is good for the latency SLO iff it answers within
          this many seconds *)
  latency_target : float;  (** required good fraction, in (0, 1) *)
  error_target : float;
      (** required fraction of requests without server errors *)
  fast_window_s : float;  (** incident-reaction window (default 5 min) *)
  slow_window_s : float;  (** sustained-regression window (default 1 h) *)
  min_events : int;
      (** fast-window events required before /healthz may flip to 503 *)
}

val default_slo : slo_config
(** 99% under 250 ms; 99.9% without server errors; 300 s / 3600 s
    windows; 20 events minimum. *)

type config = {
  request_addr : addr;
  obs_addr : addr option;
  jobs : int;
      (** engine domains per request batch; [>= 2] spawns a persistent
          {!Mae_engine.Pool} at startup that every request reuses, and
          [0] means the host's recommended domain count *)
  registry : Mae_tech.Registry.t;
  trace_out : string option;  (** Chrome trace flushed at shutdown *)
  metrics_out : string option;  (** metrics dump flushed at shutdown *)
  max_line_bytes : int;
  span_retention : int;  (** recent-span window backing [/tracez] *)
  slo : slo_config;
  capture_slow_k : int;
      (** slowest-k requests whose span trees are retained per window *)
  capture_errored_cap : int;  (** errored-request capture FIFO size *)
  capture_max_spans : int;  (** span-tree truncation per capture *)
  inject_sleep_field : bool;
      (** honor a ["sleep_s"] request field (test-only overload
          injection; never exposed on the CLI) *)
  estimate_cache : bool;
      (** consult and populate the content-addressed estimate store
          ({!Mae_db.Cas}): a repeated request batch is answered from the
          store bit-for-bit and its response carries ["cached": true].
          Hits and misses count into
          [mae_estimate_cache_{hits,misses}_total]. *)
  store_journal : string option;
      (** append-only journal backing the estimate store, replayed at
          startup so a restarted daemon answers warm; every store insert
          appends.  A replay failure logs [serve.store_journal_failed]
          and the daemon runs cold rather than refusing to start. *)
  store_out : string option;
      (** {!Mae_db.Store}-format snapshot of the estimate store written
          at shutdown (a floor-planner feed) *)
  store_live_cap : int option;
      (** LRU bound on the estimate store's live tier ({!Mae_db.Cas});
          over the cap the least-recently-used entries demote out and
          count into [mae_estimate_cache_evictions_total].  [None] is
          unbounded. *)
  idle_timeout_s : float;
      (** keep-alive connections idle longer than this (with no pending
          responses) are closed and counted into
          [mae_serve_connections_idle_closed_total] *)
  max_connections : int;
      (** open-connection cap across both planes; beyond it new
          connections are accepted and immediately closed
          ([mae_serve_connections_rejected_total]) *)
  queue_watermark : int;
      (** queued (unstarted) estimate requests at/over this are shed:
          answered ["ok": false] with ["retry_after_s"] (HTTP [503] +
          [Retry-After]) without estimation; shed requests count into
          [mae_serve_requests_shed_total] and requests_total/failed but
          burn neither SLO *)
  max_batch : int;
      (** estimate requests coalesced into one engine batch per
          dispatch tick *)
  on_ready : request_addr:addr -> obs_addr:addr option -> unit;
      (** called once both listeners are bound, with kernel-assigned
          ports resolved *)
}

val default_config :
  registry:Mae_tech.Registry.t -> request_addr:addr -> config
(** [jobs = 1], no obs plane, no dumps, 8 MiB line cap, 4096-span
    retention, {!default_slo}, capture 8 slow / 32 errored / 256 spans,
    no sleep injection, estimate store on (no journal, no snapshot,
    live tier capped at 65536), 300 s idle timeout, 1024 connections,
    watermark 256, batches of 32, no-op [on_ready]. *)

val run : config -> (unit, string) result
(** Serve until SIGINT/SIGTERM, then drain and flush.  [Error] means
    the listeners could not be bound (nothing was served).  Installs
    handlers for SIGINT/SIGTERM and ignores SIGPIPE. *)

module Protocol = Protocol
(** The pure request/response codec (line-delimited JSON and HTTP
    decode to one typed request; unit-testable without sockets). *)

module Transport = Transport
(** Fd lifecycle: listeners, buffered reads, keep-alive connections,
    idle reaping, the connection cap. *)

module Dispatch = Dispatch
(** The bounded submission queue: engine batching and admission
    control. *)

module Top = Top
(** The [mae top] dashboard client (see {!Top}). *)
