(* Protocol: the pure request/response codec of the serve plane.

   Both wire dialects decode into the same typed [request]:

   - line-delimited JSON (the original request plane): one request per
     newline-terminated line;
   - HTTP/1.1 with Content-Length framing and keep-alive (plus an
     HTTP/1.0 close-by-default fallback): [GET] paths are scrapes,
     [POST /estimate] bodies are estimation requests.

   [decode] is an incremental step function over a connection buffer:
   feed it whatever bytes arrived, get back at most one frame plus the
   number of bytes it consumed.  No sockets, no clocks, no globals --
   the whole codec is unit-testable with strings, which is the point
   of the layer. *)

module Json = Mae_obs.Json

type estimate = {
  id : Json.t;  (** the client's "id" field, echoed back; Null if absent *)
  hdl : string;
  methods : string list option;  (** validated against the registry *)
  sleep_s : float option;
      (** the "sleep_s" overload-injector field, parsed here but only
          honoured when the daemon config opts in *)
}

type http_version = V10 | V11

type framing =
  | Line
  | Http of { version : http_version; keep_alive : bool }

type request =
  | Estimate of estimate
  | Scrape of { path : string }  (** GET: the observability documents *)
  | Invalid of { id : Json.t; error : string }
      (** a well-framed request with bad content (malformed JSON, bad
          "methods", missing "hdl"): answered, counted, and -- the
          keep-alive contract -- the connection survives it *)
  | Malformed of { status : int; error : string }
      (** an HTTP framing error (bad request line, bad Content-Length):
          answered as text and the connection closes, because the codec
          cannot trust where the next request starts *)
  | Too_large of { limit : int }
      (** a line or body over the limit: answered, the oversized input
          is discarded, and the connection resynchronizes at the next
          newline *)
  | Not_allowed of { meth : string }  (** any HTTP method we don't serve *)

type frame = { request : request; framing : framing; bytes : int }

(* After an oversized line without a newline in sight the decoder
   discards input until the newline that ends it, then resumes. *)
type decoder = Ready | Discard_line

let initial = Ready

type step =
  | Frame of frame * decoder * int
  | Skip of decoder * int
  | Await

(* --- the request body: one JSON document --- *)

(* The optional "methods" request field: a comma-separated string or an
   array of names, validated against the registry before estimation so a
   typo answers with a request error listing what is registered. *)
let parse_methods doc =
  match Json.member "methods" doc with
  | None -> Ok None
  | Some (Json.String s) -> begin
      match Mae.Methodology.selection_of_string s with
      | Ok names -> Ok (Some names)
      | Error e -> Error e
    end
  | Some (Json.Array items) -> begin
      let rec strings acc = function
        | [] -> Some (List.rev acc)
        | Json.String s :: rest -> strings (s :: acc) rest
        | _ -> None
      in
      match strings [] items with
      | None -> Error "\"methods\" entries must be strings"
      | Some [] -> Error "empty method set"
      | Some names -> begin
          match Mae.Methodology.selection_of_string (String.concat "," names) with
          | Ok names -> Ok (Some names)
          | Error e -> Error e
        end
    end
  | Some _ -> Error "\"methods\" must be a string or an array of strings"

let request_of_body body =
  match Json.parse body with
  | Error e -> Invalid { id = Json.Null; error = "bad request JSON: " ^ e }
  | Ok doc -> begin
      let id = Option.value (Json.member "id" doc) ~default:Json.Null in
      let sleep_s =
        match Json.member "sleep_s" doc with
        | Some (Json.Number s) when s > 0. && s <= 5. -> Some s
        | _ -> None
      in
      match parse_methods doc with
      | Error e -> Invalid { id; error = "bad \"methods\": " ^ e }
      | Ok methods -> begin
          match Json.member "hdl" doc with
          | Some (Json.String text) ->
              Estimate { id; hdl = text; methods; sleep_s }
          | Some _ -> Invalid { id; error = "\"hdl\" must be a string" }
          | None -> Invalid { id; error = "request needs an \"hdl\" field" }
        end
    end

(* --- dialect detection --- *)

let http_methods =
  [ "GET"; "POST"; "HEAD"; "PUT"; "DELETE"; "OPTIONS"; "PATCH" ]

(* Does the buffer start an HTTP request?  [`Maybe] while the buffer is
   still a proper prefix of some "METHOD " token -- the caller waits for
   more bytes before committing to a dialect.  A line-JSON request can
   never be mistaken: it starts with '{' (or anything that is not an
   HTTP method name). *)
let looks_http buf =
  let n = String.length buf in
  let classify m =
    let lm = String.length m in
    if n > lm then
      if String.sub buf 0 lm = m && buf.[lm] = ' ' then `Yes else `No
    else if String.sub m 0 n = buf then `Maybe
    else `No
  in
  List.fold_left
    (fun acc m ->
      match (acc, classify m) with
      | `Yes, _ | _, `Yes -> `Yes
      | `Maybe, _ | _, `Maybe -> `Maybe
      | `No, `No -> `No)
    `No http_methods

(* --- line dialect --- *)

let strip_cr line =
  if String.length line > 0 && line.[String.length line - 1] = '\r' then
    String.sub line 0 (String.length line - 1)
  else line

let decode_line ~max_bytes buf =
  let n = String.length buf in
  match String.index_opt buf '\n' with
  | Some nl ->
      let line = strip_cr (String.sub buf 0 nl) in
      let len = String.length line in
      if len > max_bytes then
        Frame
          ( { request = Too_large { limit = max_bytes };
              framing = Line;
              bytes = len },
            Ready, nl + 1 )
      else if len = 0 then Skip (Ready, nl + 1)
      else
        Frame
          ({ request = request_of_body line; framing = Line; bytes = len },
           Ready, nl + 1)
  | None ->
      if n > max_bytes then
        (* no newline yet and already over budget: answer now and
           discard until the line finally ends *)
        Frame
          ( { request = Too_large { limit = max_bytes };
              framing = Line;
              bytes = n },
            Discard_line, n )
      else Await

(* --- HTTP dialect --- *)

(* The request head may not exceed this, like the old obs plane's
   64 KiB buffer bound.  Bodies are bounded by [max_bytes]. *)
let max_head_bytes = 65536

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    if i + nn > nh then None
    else if String.equal (String.sub hay i nn) needle then Some i
    else at (i + 1)
  in
  at 0

(* Earliest of "\r\n\r\n" or a bare "\n\n" (tolerated like the old
   plane did); returns (head_length, body_offset). *)
let head_terminator buf =
  match (find_sub buf "\r\n\r\n", find_sub buf "\n\n") with
  | None, None -> None
  | Some i, None -> Some (i, i + 4)
  | None, Some j -> Some (j, j + 2)
  | Some i, Some j -> if i <= j then Some (i, i + 4) else Some (j, j + 2)

type head = {
  meth : string;
  target : string;
  version : http_version option;
  headers : (string * string) list;  (** names lowercased, values trimmed *)
}

let parse_head text =
  let lines =
    String.split_on_char '\n' text |> List.map strip_cr
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "bad request line"
  | request_line :: header_lines ->
      let tokens =
        String.split_on_char ' ' request_line
        |> List.filter (fun t -> t <> "")
      in
      (match tokens with
      | [ meth; target; v ] ->
          let version =
            match v with
            | "HTTP/1.1" -> Some V11
            | "HTTP/1.0" -> Some V10
            | _ -> None
          in
          let headers =
            List.filter_map
              (fun l ->
                match String.index_opt l ':' with
                | None -> None
                | Some i ->
                    Some
                      ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
                        String.trim
                          (String.sub l (i + 1) (String.length l - i - 1)) ))
              header_lines
          in
          Ok { meth; target; version; headers }
      | _ -> Error "bad request line")

let wants_keep_alive version headers =
  let conn =
    Option.map String.lowercase_ascii (List.assoc_opt "connection" headers)
  in
  match version with
  | V11 -> conn <> Some "close"
  | V10 -> conn = Some "keep-alive"

let strip_query target =
  match String.index_opt target '?' with
  | Some i -> String.sub target 0 i
  | None -> target

let decode_http ~max_bytes buf =
  let n = String.length buf in
  match head_terminator buf with
  | None ->
      if n > max_head_bytes then
        Frame
          ( { request = Too_large { limit = max_head_bytes };
              framing = Http { version = V10; keep_alive = false };
              bytes = n },
            Ready, n )
      else Await
  | Some (head_len, body_off) -> begin
      let closing err status =
        (* a framing error poisons the rest of the buffer: consume it
           all, answer, close *)
        Frame
          ( { request = Malformed { status; error = err };
              framing = Http { version = V10; keep_alive = false };
              bytes = n },
            Ready, n )
      in
      match parse_head (String.sub buf 0 head_len) with
      | Error e -> closing e 400
      | Ok h -> begin
          let version = Option.value h.version ~default:V10 in
          let keep_alive =
            match h.version with
            | None -> false
            | Some v -> wants_keep_alive v h.headers
          in
          let framing = Http { version; keep_alive } in
          match
            match List.assoc_opt "content-length" h.headers with
            | None -> Ok 0
            | Some s -> (
                match int_of_string_opt (String.trim s) with
                | Some l when l >= 0 -> Ok l
                | _ -> Error "bad Content-Length")
          with
          | Error e -> closing e 400
          | Ok body_len ->
              if body_len > max_bytes then
                Frame
                  ( { request = Too_large { limit = max_bytes };
                      framing = Http { version; keep_alive = false };
                      bytes = n },
                    Ready, n )
              else if n - body_off < body_len then Await
              else begin
                let body = String.sub buf body_off body_len in
                let consumed = body_off + body_len in
                let path = strip_query h.target in
                let request =
                  match h.meth with
                  | "GET" -> Scrape { path }
                  | "POST" ->
                      if path = "/estimate" || path = "/" then
                        if body_len = 0 then
                          Invalid
                            { id = Json.Null;
                              error =
                                "POST needs a JSON request body (with \
                                 Content-Length)" }
                        else request_of_body (String.trim body)
                      else
                        Malformed
                          { status = 404;
                            error =
                              Printf.sprintf
                                "POST %s is not served; try POST /estimate"
                                path }
                  | m -> Not_allowed { meth = m }
                in
                Frame ({ request; framing; bytes = body_len }, Ready, consumed)
              end
        end
    end

let decode ~max_bytes state buf =
  if String.length buf = 0 then Await
  else
    match state with
    | Discard_line -> begin
        match String.index_opt buf '\n' with
        | Some nl -> Skip (Ready, nl + 1)
        | None -> Skip (Discard_line, String.length buf)
      end
    | Ready -> begin
        match looks_http buf with
        | `Maybe -> Await
        | `Yes -> decode_http ~max_bytes buf
        | `No -> decode_line ~max_bytes buf
      end

(* --- responses --- *)

type body = Json_body of Json.t | Text of string

type response = {
  status : int;
  content_type : string;
  body : body;
  retry_after_s : int option;
      (** the admission-control hint: sent as Retry-After on HTTP and
          as a "retry_after_s" field callers place in the JSON body *)
}

let json_response ?(status = 200) ?retry_after_s doc =
  { status; content_type = "application/json"; body = Json_body doc;
    retry_after_s }

let text_response ?(status = 200) ?(content_type = "text/plain") text =
  { status; content_type; body = Text text; retry_after_s = None }

let status_text = function
  | 200 -> "200 OK"
  | 400 -> "400 Bad Request"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | 413 -> "413 Content Too Large"
  | 500 -> "500 Internal Server Error"
  | 503 -> "503 Service Unavailable"
  | s -> Printf.sprintf "%d Status" s

let body_string r =
  match r.body with Json_body doc -> Json.encode doc ^ "\n" | Text s -> s

(* A response that poisons framing closes the connection even under
   keep-alive: after Too_large the client's next bytes may be the tail
   of the oversized body. *)
let will_close framing r =
  match framing with
  | Line -> false
  | Http { keep_alive; _ } -> (not keep_alive) || r.status = 413

let version_string = function V10 -> "HTTP/1.0" | V11 -> "HTTP/1.1"

let encode framing r =
  match framing with
  | Line -> body_string r
  | Http { version; keep_alive = _ } as f ->
      let body = body_string r in
      Printf.sprintf
        "%s %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: \
         %s\r\n\r\n%s"
        (version_string version) (status_text r.status) r.content_type
        (String.length body)
        (match r.retry_after_s with
        | None -> ""
        | Some s -> Printf.sprintf "Retry-After: %d\r\n" s)
        (if will_close f r then "close" else "keep-alive")
        body
