(** The pure request/response codec of the serve plane.

    Line-delimited JSON and HTTP/1.0/1.1 both decode into one typed
    {!request} and encode from one typed {!response}.  The decoder is
    an incremental step function over a connection buffer -- no
    sockets, no clocks -- so the whole codec is testable with
    strings. *)

module Json = Mae_obs.Json

type estimate = {
  id : Json.t;  (** the client's "id" field, echoed back; Null if absent *)
  hdl : string;
  methods : string list option;
  sleep_s : float option;
      (** the "sleep_s" overload-injector field; honoured only when the
          daemon config opts in *)
}

type http_version = V10 | V11

type framing =
  | Line  (** newline-delimited JSON: responses are one JSON line *)
  | Http of { version : http_version; keep_alive : bool }
      (** Content-Length framed; the response echoes [version], and
          [keep_alive] says whether the connection survives it *)

type request =
  | Estimate of estimate
  | Scrape of { path : string }
  | Invalid of { id : Json.t; error : string }
      (** well-framed, bad content: answered and counted, connection
          kept (the keep-alive contract) *)
  | Malformed of { status : int; error : string }
      (** HTTP framing error: answered as text, connection closes *)
  | Too_large of { limit : int }
      (** over the size limit: answered; a line connection
          resynchronizes at the next newline *)
  | Not_allowed of { meth : string }

type frame = {
  request : request;
  framing : framing;
  bytes : int;  (** size of the request line or body, for the access log *)
}

type decoder = Ready | Discard_line

val initial : decoder

type step =
  | Frame of frame * decoder * int
      (** one decoded frame, the successor state, bytes consumed *)
  | Skip of decoder * int  (** consumed bytes carry no frame (blank
          lines, discarded oversize tail) *)
  | Await  (** need more bytes *)

val decode : max_bytes:int -> decoder -> string -> step
(** [decode ~max_bytes state buf] inspects the front of [buf].  The
    dialect is chosen per frame: a buffer starting with an HTTP method
    token decodes as HTTP, anything else as a JSON line.  [max_bytes]
    bounds a request line or an HTTP body. *)

val request_of_body : string -> request
(** Parse one JSON request document ([Estimate] or [Invalid]) -- the
    shared body semantics of both dialects. *)

(** {1 Responses} *)

type body = Json_body of Json.t | Text of string

type response = {
  status : int;
  content_type : string;
  body : body;
  retry_after_s : int option;
}

val json_response : ?status:int -> ?retry_after_s:int -> Json.t -> response
val text_response : ?status:int -> ?content_type:string -> string -> response

val body_string : response -> string
(** The payload as written on a line connection (JSON bodies get a
    trailing newline). *)

val status_text : int -> string

val will_close : framing -> response -> bool
(** Whether the connection must close after this response: always for
    non-keep-alive HTTP, and for responses that poison framing (413). *)

val encode : framing -> response -> string
(** Serialize for the wire: the bare (newline-terminated) body on a
    line connection; a full status line + headers + body under HTTP,
    echoing the request's version and advertising keep-alive or
    close per {!will_close}. *)
