(* The [mae top] dashboard: poll a serve instance's observability
   plane and render one frame per interval.

   Everything except the socket I/O is pure -- fetch the three
   documents, parse them into a [sample], diff two samples for rates,
   render to a string -- so tests can drive frames from canned
   payloads without a server. *)

module Json = Mae_obs.Json

(* index of the first occurrence of [needle] in [hay] at or after
   [from], or None *)
let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then Some from
  else begin
    let rec go i =
      if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    go from
  end

(* --- HTTP/1.0 client (blocking, one request per connection) --- *)

let http_get ~host ~port ~path =
  match
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found | Invalid_argument _ -> Unix.inet_addr_loopback
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
        let _ = Unix.write_substring fd req 0 (String.length req) in
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
        in
        drain ();
        Buffer.contents buf)
  with
  | raw -> begin
      (* split the status line + headers from the body *)
      match find_sub raw "\r\n\r\n" 0 with
      | Some i ->
          Ok (String.sub raw (i + 4) (String.length raw - i - 4))
      | None -> Error (Printf.sprintf "GET %s: malformed HTTP response" path)
    end
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "GET %s: %s" path (Unix.error_message e))

(* --- Prometheus text parsing --- *)

type pm_sample = {
  pm_name : string;
  pm_quantile : float option;
  pm_value : float;
}

let parse_prometheus text =
  let parse_line line =
    if String.length line = 0 || line.[0] = '#' then None
    else begin
      match String.rindex_opt line ' ' with
      | None -> None
      | Some sp -> begin
          let series = String.sub line 0 sp in
          let value = String.sub line (sp + 1) (String.length line - sp - 1) in
          match float_of_string_opt value with
          | None -> None
          | Some pm_value ->
              let pm_name, pm_quantile =
                match String.index_opt series '{' with
                | None -> (series, None)
                | Some b ->
                    let name = String.sub series 0 b in
                    let labels =
                      String.sub series b (String.length series - b)
                    in
                    let q =
                      let marker = "quantile=\"" in
                      match find_sub labels marker 0 with
                      | Some start -> begin
                          let vstart = start + String.length marker in
                          match String.index_from_opt labels vstart '"' with
                          | None -> None
                          | Some e ->
                              float_of_string_opt
                                (String.sub labels vstart (e - vstart))
                        end
                      | None -> None
                    in
                    (name, q)
              in
              Some { pm_name; pm_quantile; pm_value }
        end
    end
  in
  String.split_on_char '\n' text |> List.filter_map parse_line

let metric_value samples name =
  List.find_map
    (fun s ->
      if String.equal s.pm_name name && s.pm_quantile = None then
        Some s.pm_value
      else None)
    samples

let sketch_quantiles samples name =
  List.filter_map
    (fun s ->
      match s.pm_quantile with
      | Some q when String.equal s.pm_name name -> Some (q, s.pm_value)
      | _ -> None)
    samples

(* --- /slo and /tracez JSON parsing --- *)

type slo_row = {
  slo_name : string;
  slo_kind : string;
  target : float;
  fast_burn : float;
  slow_burn : float;
  fast_bad : int;
  fast_total : int;
  slo_healthy : bool;
}

let num field doc = Option.bind (Json.member field doc) Json.to_number

let parse_slo body =
  match Json.parse body with
  | Error e -> Error ("bad /slo JSON: " ^ e)
  | Ok doc ->
      let healthy =
        match Json.member "healthy" doc with
        | Some (Json.Bool b) -> b
        | _ -> true
      in
      let rows =
        match Option.bind (Json.member "slos" doc) Json.to_list with
        | None -> []
        | Some slos ->
            List.filter_map
              (fun slo ->
                let str field =
                  Option.bind (Json.member field slo) Json.to_string
                in
                let window field =
                  match Json.member field slo with
                  | Some w ->
                      let f name =
                        Option.value ~default:0. (num name w)
                      in
                      (f "burn_rate", int_of_float (f "good" +. f "bad"),
                       int_of_float (f "bad"))
                  | None -> (0., 0, 0)
                in
                match str "name" with
                | None -> None
                | Some slo_name ->
                    let fast_burn, fast_total, fast_bad = window "fast" in
                    let slow_burn, _, _ = window "slow" in
                    Some
                      {
                        slo_name;
                        slo_kind =
                          Option.value ~default:"" (str "kind");
                        target = Option.value ~default:0. (num "target" slo);
                        fast_burn;
                        slow_burn;
                        fast_bad;
                        fast_total;
                        slo_healthy =
                          (match Json.member "healthy" slo with
                          | Some (Json.Bool b) -> b
                          | _ -> true);
                      })
              slos
      in
      Ok (healthy, rows)

type capture_row = {
  cap_rid : string;
  cap_kind : string;
  cap_latency : float;
  cap_error : string option;
}

let parse_captures body =
  match Json.parse body with
  | Error e -> Error ("bad /tracez JSON: " ^ e)
  | Ok doc ->
      let rows =
        match Option.bind (Json.member "captures" doc) Json.to_list with
        | None -> []
        | Some caps ->
            List.filter_map
              (fun c ->
                let str field =
                  Option.bind (Json.member field c) Json.to_string
                in
                match str "rid" with
                | None -> None
                | Some cap_rid ->
                    Some
                      {
                        cap_rid;
                        cap_kind = Option.value ~default:"" (str "kind");
                        cap_latency =
                          Option.value ~default:0. (num "latency_s" c);
                        cap_error = str "error";
                      })
              caps
      in
      Ok rows

(* --- /runtimez JSON parsing --- *)

type runtime_row = {
  rt_domain : int;
  rt_pauses : int;
  rt_p50 : float option;
  rt_p99 : float option;
  rt_max_pause_s : float;
  rt_minors : int;
  rt_major_slices : int;
  rt_alloc_words : float;
  rt_heap_words : float;
}

let parse_runtimez body =
  match Json.parse body with
  | Error e -> Error ("bad /runtimez JSON: " ^ e)
  | Ok doc ->
      let rows =
        match Option.bind (Json.member "domains" doc) Json.to_list with
        | None -> []
        | Some ds ->
            List.filter_map
              (fun d ->
                match num "domain" d with
                | None -> None
                | Some dom ->
                    let f field = Option.value ~default:0. (num field d) in
                    Some
                      {
                        rt_domain = int_of_float dom;
                        rt_pauses = int_of_float (f "pauses");
                        rt_p50 = num "p50_pause_s" d;
                        rt_p99 = num "p99_pause_s" d;
                        rt_max_pause_s = f "max_pause_s";
                        rt_minors = int_of_float (f "minor_collections");
                        rt_major_slices = int_of_float (f "major_slices");
                        rt_alloc_words = f "allocated_words";
                        rt_heap_words = f "heap_words";
                      })
              ds
      in
      Ok rows

(* --- one sampled frame --- *)

type sample = {
  at : float;  (* monotonic sample instant, for rate arithmetic *)
  metrics : pm_sample list;
  healthy : bool;
  slos : slo_row list;
  captures : capture_row list;
  runtime : runtime_row list;
}

let fetch ~host ~port =
  match http_get ~host ~port ~path:"/metrics" with
  | Error _ as e -> e
  | Ok metrics_text -> begin
      match Result.bind (http_get ~host ~port ~path:"/slo") parse_slo with
      | Error _ as e -> e
      | Ok (healthy, slos) ->
          let captures =
            (* /tracez is best-effort garnish; a failure there should
               not take the dashboard down *)
            match
              Result.bind (http_get ~host ~port ~path:"/tracez")
                parse_captures
            with
            | Ok rows -> rows
            | Error _ -> []
          in
          let runtime =
            (* /runtimez likewise: empty when the lens is off or the
               daemon predates it *)
            match
              Result.bind (http_get ~host ~port ~path:"/runtimez")
                parse_runtimez
            with
            | Ok rows -> rows
            | Error _ -> []
          in
          Ok
            {
              at = Mae_obs.Clock.monotonic ();
              metrics = parse_prometheus metrics_text;
              healthy;
              slos;
              captures;
              runtime;
            }
    end

(* --- rendering --- *)

let fmt_latency v =
  if v >= 1. then Printf.sprintf "%.2fs" v
  else if v >= 1e-3 then Printf.sprintf "%.1fms" (v *. 1e3)
  else Printf.sprintf "%.0fus" (v *. 1e6)

let quantile_cells samples name =
  let qs = sketch_quantiles samples name in
  let cell q =
    match List.assoc_opt q qs with
    | Some v -> fmt_latency v
    | None -> "-"
  in
  (cell 0.5, cell 0.9, cell 0.99, cell 0.999)

(* every per-methodology sketch the scrape exposes, without the
   dashboard having to know the methodology registry *)
let summary_metrics samples =
  List.sort_uniq String.compare
    (List.filter_map
       (fun s ->
         if s.pm_quantile <> None then Some s.pm_name else None)
       samples)

let render ?prev (s : sample) =
  let b = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf
      (fun str ->
        Buffer.add_string b str;
        Buffer.add_char b '\n')
      fmt
  in
  let v name = Option.value ~default:0. (metric_value s.metrics name) in
  let reqs = v "mae_serve_requests_total" in
  let rate =
    match prev with
    | Some p when s.at > p.at ->
        let dr =
          reqs -. Option.value ~default:0.
                    (metric_value p.metrics "mae_serve_requests_total")
        in
        Printf.sprintf "%.1f req/s" (Float.max 0. dr /. (s.at -. p.at))
    | _ -> "- req/s"
  in
  let hits = v "mae_kernel_cache_hits_total" in
  let misses = v "mae_kernel_cache_misses_total" in
  let lookups = hits +. misses in
  line "mae top -- %s  %s" (if s.healthy then "HEALTHY" else "DEGRADED") rate;
  line "requests %.0f (%.0f ok, %.0f failed)   scrapes %.0f   cache %s"
    reqs
    (v "mae_serve_requests_ok_total")
    (v "mae_serve_requests_failed_total")
    (v "mae_serve_scrapes_total")
    (if lookups = 0. then "n/a"
     else Printf.sprintf "%.1f%% hit of %.0f" (100. *. hits /. lookups) lookups);
  (* connections pane: daemons predating the layered serve plane expose
     none of these series; render nothing rather than a row of zeros *)
  let conn_metric name = metric_value s.metrics name in
  (match conn_metric "mae_serve_open_connections" with
  | None -> ()
  | Some open_conns ->
      let shed = v "mae_serve_requests_shed_total" in
      let shed_rate =
        match prev with
        | Some p when s.at > p.at ->
            let dp =
              shed -. Option.value ~default:0.
                        (metric_value p.metrics "mae_serve_requests_shed_total")
            in
            Printf.sprintf "%.1f shed/s" (Float.max 0. dp /. (s.at -. p.at))
        | _ -> "- shed/s"
      in
      line
        "connections %.0f open (%.0f accepted, %.0f reused)   queue %.0f   \
         shed %.0f (%s)"
        open_conns
        (v "mae_serve_connections_total")
        (v "mae_serve_connections_reused_total")
        (v "mae_serve_queue_depth")
        shed shed_rate);
  line "";
  if s.slos <> [] then begin
    line "%-24s %-12s %8s %10s %10s  %s" "slo" "kind" "target" "fast burn"
      "slow burn" "state";
    List.iter
      (fun r ->
        line "%-24s %-12s %7.2f%% %10.2f %10.2f  %s" r.slo_name r.slo_kind
          (100. *. r.target) r.fast_burn r.slow_burn
          (if r.slo_healthy then "ok"
           else Printf.sprintf "BURNING (%d/%d bad)" r.fast_bad r.fast_total))
      s.slos;
    line ""
  end;
  let summaries = summary_metrics s.metrics in
  if summaries <> [] then begin
    line "%-40s %9s %9s %9s %9s" "latency sketch" "p50" "p90" "p99" "p999";
    List.iter
      (fun name ->
        let p50, p90, p99, p999 = quantile_cells s.metrics name in
        line "%-40s %9s %9s %9s %9s" name p50 p90 p99 p999)
      summaries;
    line ""
  end;
  if s.runtime <> [] then begin
    line "%-10s %7s %9s %9s %9s %8s %8s %11s %8s" "gc domain" "pauses" "p50"
      "p99" "max" "minor/s" "major/s" "alloc Mw/s" "heap Mw";
    let dt =
      match prev with
      | Some p when s.at > p.at -> Some (p, s.at -. p.at)
      | _ -> None
    in
    List.iter
      (fun r ->
        let opt_lat = function Some v -> fmt_latency v | None -> "-" in
        let rate f =
          match dt with
          | Some (p, dt) -> begin
              match
                List.find_opt (fun q -> q.rt_domain = r.rt_domain) p.runtime
              with
              | Some pr ->
                  Printf.sprintf "%.1f" (Float.max 0. (f r -. f pr) /. dt)
              | None -> "-"
            end
          | None -> "-"
        in
        line "%-10d %7d %9s %9s %9s %8s %8s %11s %8.1f" r.rt_domain
          r.rt_pauses (opt_lat r.rt_p50) (opt_lat r.rt_p99)
          (fmt_latency r.rt_max_pause_s)
          (rate (fun x -> float_of_int x.rt_minors))
          (rate (fun x -> float_of_int x.rt_major_slices))
          (rate (fun x -> x.rt_alloc_words /. 1e6))
          (r.rt_heap_words /. 1e6))
      s.runtime;
    line ""
  end;
  (match s.captures with
  | [] -> line "no captured tails yet"
  | caps ->
      line "worst recent traces (/tracez captures):";
      let by_latency =
        List.sort (fun a b -> Float.compare b.cap_latency a.cap_latency) caps
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: tl -> x :: take (n - 1) tl
      in
      List.iter
        (fun c ->
          line "  %-8s %-8s %9s%s" c.cap_rid c.cap_kind
            (fmt_latency c.cap_latency)
            (match c.cap_error with None -> "" | Some e -> "  " ^ e))
        (take 8 by_latency));
  Buffer.contents b

(* --- the polling loop --- *)

let run ~host ~port ~interval_s ~iterations ~clear =
  let rec go i prev =
    match iterations with
    | Some n when i >= n -> Ok ()
    | _ -> begin
        match fetch ~host ~port with
        | Error e -> Error e
        | Ok s ->
            if clear then print_string "\x1b[2J\x1b[H";
            print_string (render ?prev s);
            flush stdout;
            let last =
              match iterations with Some n -> i + 1 >= n | None -> false
            in
            if not last then Unix.sleepf interval_s;
            go (i + 1) (Some s)
      end
  in
  go 0 None
