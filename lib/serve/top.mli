(** The [mae top] live dashboard: poll a running serve instance's
    observability plane ([/metrics], [/slo], [/tracez], [/runtimez])
    and render a text frame per interval -- throughput, cache hit
    ratio, SLO burn rates, per-method latency quantiles from the GK
    sketches, a per-domain GC pane (pause quantiles, collections/s,
    allocation rate), and the worst recently captured traces.

    The fetch/parse/render stages are exposed separately so tests can
    exercise the parsers and the renderer on canned payloads without a
    server. *)

val http_get :
  host:string -> port:int -> path:string -> (string, string) result
(** Blocking HTTP/1.0 GET; returns the response body. *)

type pm_sample = {
  pm_name : string;  (** metric name, label block stripped *)
  pm_quantile : float option;  (** the [quantile="q"] label, if any *)
  pm_value : float;
}

val parse_prometheus : string -> pm_sample list
(** Parse Prometheus text exposition; comment lines and unparsable
    lines are skipped. *)

val metric_value : pm_sample list -> string -> float option
(** First unlabelled sample of that name (counters, gauges). *)

val sketch_quantiles : pm_sample list -> string -> (float * float) list
(** All [(quantile, value)] samples of a summary metric. *)

type slo_row = {
  slo_name : string;
  slo_kind : string;
  target : float;
  fast_burn : float;
  slow_burn : float;
  fast_bad : int;
  fast_total : int;
  slo_healthy : bool;
}

val parse_slo : string -> (bool * slo_row list, string) result
(** Parse a [GET /slo] body into (overall healthy, rows). *)

type capture_row = {
  cap_rid : string;
  cap_kind : string;  (** ["errored"] or ["slow"] *)
  cap_latency : float;
  cap_error : string option;
}

val parse_captures : string -> (capture_row list, string) result
(** Parse the tail-based captures out of a [GET /tracez] body. *)

type runtime_row = {
  rt_domain : int;
  rt_pauses : int;
  rt_p50 : float option;  (** median pause, seconds; [None] when unset *)
  rt_p99 : float option;
  rt_max_pause_s : float;
  rt_minors : int;
  rt_major_slices : int;
  rt_alloc_words : float;
  rt_heap_words : float;
}

val parse_runtimez : string -> (runtime_row list, string) result
(** Parse the per-domain GC rows out of a [GET /runtimez] body. *)

type sample = {
  at : float;  (** monotonic sample instant, for rate arithmetic *)
  metrics : pm_sample list;
  healthy : bool;
  slos : slo_row list;
  captures : capture_row list;
  runtime : runtime_row list;
}

val fetch : host:string -> port:int -> (sample, string) result
(** One poll: [/metrics] and [/slo] are required, [/tracez] and
    [/runtimez] are best-effort (the GC pane simply disappears when
    the runtime lens is off). *)

val render : ?prev:sample -> sample -> string
(** Render one dashboard frame; [prev] enables the req/s rate. *)

val run :
  host:string ->
  port:int ->
  interval_s:float ->
  iterations:int option ->
  clear:bool ->
  (unit, string) result
(** Poll and print frames every [interval_s] seconds until
    [iterations] frames have been shown ([None] means forever);
    [clear] redraws in place with ANSI clear-screen. *)
