(* Transport: fd lifecycle for the serve plane.

   Owns listening sockets, the accept path, per-connection buffered
   reads (short-read/EINTR loops), the write-everything loop, the
   select round, idle-timeout reaping and the max-connection cap.
   Bytes go in, {!Protocol.frame}s come out through the [handle]
   callback; responses go back through {!send}.  No request semantics
   live here -- that is {!Protocol} (parsing) and {!Dispatch}
   (queueing + engine). *)

module Metrics = Mae_obs.Metrics

type addr = Tcp of { host : string; port : int } | Unix_sock of string

let pp_addr ppf = function
  | Tcp { host; port } -> Format.fprintf ppf "%s:%d" host port
  | Unix_sock path -> Format.fprintf ppf "unix:%s" path

(* "7788" | "host:7788" -> TCP (empty host = loopback); "unix:PATH" or
   anything with a slash -> Unix-domain socket path. *)
let parse_addr s =
  let unix_prefix = "unix:" in
  let n = String.length unix_prefix in
  if String.length s > n && String.equal (String.sub s 0 n) unix_prefix then
    Ok (Unix_sock (String.sub s n (String.length s - n)))
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | Some i -> begin
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p <= 65535 ->
            Ok (Tcp { host = (if host = "" then "127.0.0.1" else host); port = p })
        | _ -> Error (Printf.sprintf "bad port in address %S" s)
      end
    | None -> begin
        match int_of_string_opt s with
        | Some p when p >= 0 && p <= 65535 ->
            Ok (Tcp { host = "127.0.0.1"; port = p })
        | _ ->
            Error
              (Printf.sprintf
                 "bad address %S (want PORT, HOST:PORT or unix:PATH)" s)
      end

(* --- sockets --- *)

let socket_of_addr = function
  | Tcp { host; port } ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Ok (fd, Unix.ADDR_INET (inet, port))
  | Unix_sock path ->
      let stale =
        if Sys.file_exists path then begin
          match (Unix.stat path).Unix.st_kind with
          | Unix.S_SOCK ->
              Sys.remove path;
              Ok ()
          | _ -> Error (Printf.sprintf "%s exists and is not a socket" path)
        end
        else Ok ()
      in
      begin
        match stale with
        | Error _ as e -> e
        | Ok () ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Ok (fd, Unix.ADDR_UNIX path)
      end

let bound_addr fd = function
  | Unix_sock path -> Unix_sock path
  | Tcp { host; port = _ } -> (
      (* learn the kernel-assigned port when binding port 0 *)
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp { host; port }
      | _ -> Tcp { host; port = 0 })

let listen_on addr =
  match socket_of_addr addr with
  | Error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Format.asprintf "cannot listen on %a: %s" pp_addr addr
           (Unix.error_message e))
  | Ok (fd, sockaddr) -> (
      match
        Unix.bind fd sockaddr;
        Unix.listen fd 64
      with
      | () -> Ok (fd, bound_addr fd addr)
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close fd;
          Error
            (Format.asprintf "cannot listen on %a: %s" pp_addr addr
               (Unix.error_message e)))

let unlink_unix_addr = function
  | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ()

(* Write the whole buffer or report failure.  A signal landing mid-frame
   must not drop the rest of a response (the old catch-all did exactly
   that), so EINTR retries at the same offset; EAGAIN on a non-blocking
   peer waits for writability (bounded, so one stuck client cannot hang
   the daemon forever).  Any other error is a dead peer: false. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  (* one write per iteration so a retry resumes at the exact offset the
     short or interrupted write left off *)
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
          match Unix.select [] [ fd ] [] 30.0 with
          | _, [ _ ], _ -> go off
          | _ -> false (* writability never came: give up on the peer *)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception Unix.Unix_error _ -> false)
      | exception Unix.Unix_error _ -> false
  in
  go 0

(* --- connections --- *)

type plane = Request_plane | Obs_plane

type conn = {
  fd : Unix.file_descr;
  plane : plane;
  peer : string;
  rbuf : Buffer.t;
  mutable decoder : Protocol.decoder;
  mutable last_activity : float;  (** monotonic, for idle reaping *)
  mutable frames_in : int;  (** frames decoded on this connection *)
  mutable pending : int;  (** submitted jobs not yet answered *)
  mutable closing : bool;  (** close once [pending] drains to 0 *)
  mutable dead : bool;  (** fd closed; late answers skip the write *)
}

type config = {
  max_request_bytes : int;  (** one request line / HTTP body bound *)
  idle_timeout_s : float;
  max_connections : int;
}

(* --- registry instruments --- *)

let connections_total =
  Metrics.counter "mae_serve_connections_total"
    ~help:"Request-plane connections accepted"

let connections_reused =
  Metrics.counter "mae_serve_connections_reused_total"
    ~help:
      "Request-plane connections that carried a second request \
       (keep-alive or pipelining paying off)"

let connections_rejected =
  Metrics.counter "mae_serve_connections_rejected_total"
    ~help:"Connections refused at the max-connection cap"

let connections_idle_closed =
  Metrics.counter "mae_serve_connections_idle_closed_total"
    ~help:"Connections reaped by the idle timeout"

let open_connections_gauge =
  Metrics.gauge "mae_serve_open_connections"
    ~help:"Request-plane connections currently open"

type t = {
  config : config;
  listeners : (Unix.file_descr * plane) list;
  mutable conns : conn list;
}

let create ~config ~listeners = { config; listeners; conns = [] }

let open_request_conns t =
  List.length (List.filter (fun c -> c.plane = Request_plane) t.conns)

let sync_gauge t =
  Metrics.set open_connections_gauge (Float.of_int (open_request_conns t))

let close t conn =
  if not conn.dead then begin
    conn.dead <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c.fd != conn.fd) t.conns;
    if conn.plane = Request_plane then sync_gauge t
  end

let send t conn framing response =
  if not conn.dead then begin
    let ok = write_all conn.fd (Protocol.encode framing response) in
    if (not ok) || Protocol.will_close framing response then close t conn
  end

let accept t listener plane =
  match Unix.accept listener with
  | fd, peer_addr ->
      if List.length t.conns >= t.config.max_connections then begin
        (* over the cap: shed at the door.  Accept-then-close beats
           leaving the backlog to time out -- the client learns now. *)
        Metrics.incr connections_rejected;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        let peer =
          match peer_addr with
          | Unix.ADDR_INET (a, p) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
          | Unix.ADDR_UNIX _ -> "unix"
        in
        (* non-blocking so the read loop can drain the socket fully and
           stop exactly at EAGAIN instead of risking a block *)
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
        let conn =
          {
            fd;
            plane;
            peer;
            rbuf = Buffer.create 512;
            decoder = Protocol.initial;
            last_activity = Mae_obs.Clock.monotonic ();
            frames_in = 0;
            pending = 0;
            closing = false;
            dead = false;
          }
        in
        t.conns <- conn :: t.conns;
        if plane = Request_plane then begin
          Metrics.incr connections_total;
          sync_gauge t
        end
      end
  | exception Unix.Unix_error _ -> ()

(* Decode every complete frame in the connection buffer, in order, and
   hand each to [handle].  [handle] may answer inline (closing the
   connection on a framing error) or queue the frame; the loop stops
   the moment the connection dies. *)
let deliver_frames t conn ~handle =
  let data = Buffer.contents conn.rbuf in
  let len = String.length data in
  let rec go pos =
    if conn.dead || pos >= len then pos
    else begin
      let rest = if pos = 0 then data else String.sub data pos (len - pos) in
      match
        Protocol.decode ~max_bytes:t.config.max_request_bytes conn.decoder rest
      with
      | Protocol.Await -> pos
      | Protocol.Skip (d, k) ->
          conn.decoder <- d;
          go (pos + k)
      | Protocol.Frame (frame, d, k) ->
          conn.decoder <- d;
          conn.frames_in <- conn.frames_in + 1;
          if conn.frames_in = 2 && conn.plane = Request_plane then
            Metrics.incr connections_reused;
          handle conn frame;
          go (pos + k)
    end
  in
  let consumed = go 0 in
  if not conn.dead then begin
    if consumed > 0 then begin
      Buffer.clear conn.rbuf;
      Buffer.add_substring conn.rbuf data consumed (len - consumed)
    end
  end

let service t conn ~handle =
  let chunk = Bytes.create 65536 in
  (* Loop on short reads: the socket is non-blocking, so keep reading
     until EAGAIN (a partial chunk is taken as "drained" too -- anything
     left wakes the next select) and retry EINTR at the same spot rather
     than dropping the wakeup. *)
  let rec fill total =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n ->
        Buffer.add_subbytes conn.rbuf chunk 0 n;
        if n = Bytes.length chunk then fill (total + n) else `Data (total + n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill total
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if total = 0 then `Nothing else `Data total
    | exception Unix.Unix_error _ -> `Err
  in
  match fill 0 with
  | `Nothing -> ()
  | `Err -> close t conn
  | `Eof ->
      (* EOF: answer whatever complete frames are already buffered,
         then close -- once any queued work for this connection has
         been answered.  (A client that shut down only its write side
         still reads its last responses.) *)
      deliver_frames t conn ~handle;
      if conn.pending = 0 then close t conn else conn.closing <- true
  | `Data _ ->
      conn.last_activity <- Mae_obs.Clock.monotonic ();
      deliver_frames t conn ~handle

let reap t =
  let now = Mae_obs.Clock.monotonic () in
  List.iter
    (fun conn ->
      if conn.closing && conn.pending = 0 then close t conn
      else if
        conn.pending = 0
        && now -. conn.last_activity > t.config.idle_timeout_s
      then begin
        Metrics.incr connections_idle_closed;
        close t conn
      end)
    t.conns

(* The select round.  [tick] runs the dispatch queue and says whether
   a backlog remains: with one, the next select polls instead of
   sleeping so queued work never waits on quiet sockets. *)
let run_loop t ~stop ~handle ~tick =
  let rec loop backlog =
    if stop () then ()
    else begin
      let fds =
        List.map fst t.listeners @ List.map (fun c -> c.fd) t.conns
      in
      let timeout = if backlog then 0.0 else 1.0 in
      match Unix.select fds [] [] timeout with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              match
                List.find_opt (fun (lfd, _) -> lfd == fd) t.listeners
              with
              | Some (lfd, plane) -> accept t lfd plane
              | None -> (
                  match List.find_opt (fun c -> c.fd == fd) t.conns with
                  | Some conn -> service t conn ~handle
                  | None -> ()))
            readable;
          let backlog = tick () in
          reap t;
          loop backlog
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop backlog
    end
  in
  loop false

(* Drain: listeners are already closed by the caller; answer every
   frame already buffered, run the dispatch queue dry, close all. *)
let drain t ~handle ~tick =
  List.iter (fun conn -> if not conn.dead then deliver_frames t conn ~handle)
    t.conns;
  while tick () do
    ()
  done;
  List.iter (fun conn -> close t conn) t.conns
