(** Fd lifecycle for the serve plane: listeners, the accept path,
    buffered per-connection reads, the write-everything loop, the
    select round, idle reaping and the max-connection cap.

    Bytes in, {!Protocol.frame}s out (through [handle]); responses go
    back through {!send}.  Request semantics live in {!Protocol} and
    {!Dispatch}. *)

type addr = Tcp of { host : string; port : int } | Unix_sock of string

val pp_addr : Format.formatter -> addr -> unit
val parse_addr : string -> (addr, string) result

val listen_on : addr -> (Unix.file_descr * addr, string) result
(** Bind + listen; the returned address has the kernel-assigned port
    when binding TCP port 0. *)

val unlink_unix_addr : addr -> unit
val write_all : Unix.file_descr -> string -> bool

type plane = Request_plane | Obs_plane

type conn = {
  fd : Unix.file_descr;
  plane : plane;
  peer : string;
  rbuf : Buffer.t;
  mutable decoder : Protocol.decoder;
  mutable last_activity : float;
  mutable frames_in : int;
  mutable pending : int;
      (** submitted but unanswered dispatch jobs; {!Dispatch} maintains
          it so EOF/idle close waits for in-flight answers *)
  mutable closing : bool;
  mutable dead : bool;
}

type config = {
  max_request_bytes : int;
  idle_timeout_s : float;
  max_connections : int;
}

type t

val create : config:config -> listeners:(Unix.file_descr * plane) list -> t
val open_request_conns : t -> int

val send : t -> conn -> Protocol.framing -> Protocol.response -> unit
(** Encode and write; closes the connection on write failure or when
    {!Protocol.will_close} says so.  A no-op on a dead connection. *)

val close : t -> conn -> unit

val run_loop :
  t ->
  stop:(unit -> bool) ->
  handle:(conn -> Protocol.frame -> unit) ->
  tick:(unit -> bool) ->
  unit
(** The select loop: accept, read, decode, [handle] each frame, then
    [tick] the dispatch queue.  While [tick] reports a backlog the
    next round polls instead of sleeping. *)

val drain :
  t ->
  handle:(conn -> Protocol.frame -> unit) ->
  tick:(unit -> bool) ->
  unit
(** Shutdown path (listeners already closed): deliver every buffered
    complete frame, run [tick] until the queue is dry, close all. *)
