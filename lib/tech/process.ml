type t = {
  name : string;
  lambda_microns : float;
  row_height : Mae_geom.Lambda.t;
  track_pitch : Mae_geom.Lambda.t;
  feed_through_width : Mae_geom.Lambda.t;
  port_pitch : Mae_geom.Lambda.t;
  min_spacing : Mae_geom.Lambda.t;
  devices : Device_kind.t list;
  device_index : (string * Device_kind.t) array;
}

let check_unique_names devices =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (d : Device_kind.t) ->
      if Hashtbl.mem seen d.name then
        invalid_arg ("Process.make: duplicate device kind " ^ d.name);
      Hashtbl.add seen d.name ())
    devices

(* The index is built once per process at construction; name lookups
   happen for every device of every module (validation, statistics, the
   gate-array transistor count), so the per-lookup cost matters far
   more than the build cost. *)
let index_of_devices devices =
  let a = Array.of_list (List.map (fun (d : Device_kind.t) -> (d.name, d)) devices) in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) a;
  a

let make ~name ~lambda_microns ~row_height ~track_pitch ~feed_through_width
    ~port_pitch ~min_spacing ~devices =
  if String.length name = 0 then invalid_arg "Process.make: empty name";
  let positive what v =
    if v <= 0. then invalid_arg ("Process.make: non-positive " ^ what)
  in
  positive "lambda" lambda_microns;
  positive "row_height" row_height;
  positive "track_pitch" track_pitch;
  positive "feed_through_width" feed_through_width;
  positive "port_pitch" port_pitch;
  positive "min_spacing" min_spacing;
  check_unique_names devices;
  {
    name;
    lambda_microns;
    row_height;
    track_pitch;
    feed_through_width;
    port_pitch;
    min_spacing;
    devices;
    device_index = index_of_devices devices;
  }

let find_device t name =
  let a = t.device_index in
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let mid_name, kind = Array.unsafe_get a mid in
      let c = String.compare name mid_name in
      if c = 0 then Some kind else if c < 0 then go lo mid else go (mid + 1) hi
    end
  in
  go 0 (Array.length a)

let find_device_exn t name =
  match find_device t name with Some d -> d | None -> raise Not_found

let device_area t name = Option.map Device_kind.area (find_device t name)

let with_devices t devices =
  check_unique_names devices;
  { t with devices; device_index = index_of_devices devices }

let fingerprint t =
  (* Every numeric parameter is rendered as a hex float (%h): exact,
     locale-independent, and distinct for distinct bit patterns.  Kinds
     are listed sorted by name so two processes built from the same set
     in different orders fingerprint equal. *)
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "mae-process 1\nname %S\nlambda %h\nrow_height %h\ntrack_pitch %h\n\
     feed_through_width %h\nport_pitch %h\nmin_spacing %h\n"
    t.name t.lambda_microns t.row_height t.track_pitch t.feed_through_width
    t.port_pitch t.min_spacing;
  List.iter
    (fun (k : Device_kind.t) ->
      Printf.bprintf buf "device %S %s %h %h\n" k.name
        (Device_kind.category_to_string k.category)
        k.width k.height)
    (List.sort
       (fun (a : Device_kind.t) b -> String.compare a.name b.name)
       t.devices);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp ppf t =
  Format.fprintf ppf
    "@[<v>process %s (lambda=%.2fum, row=%.0fL, track=%.0fL, feed=%.0fL,@ \
     port=%.0fL, spacing=%.0fL, %d device kinds)@]"
    t.name t.lambda_microns t.row_height t.track_pitch t.feed_through_width
    t.port_pitch t.min_spacing (List.length t.devices)
