(** A fabrication process description (Figure 1's "Fabrication Process Data
    Base").

    Multiple processes may be loaded at once (see {!Registry}); the paper
    emphasizes that the estimator "deals with different chip fabrication
    technologies (e.g., CMOS and nMOS) and can easily be adjusted to cope
    with new chip fabrication processes". *)

type t = private {
  name : string;
  lambda_microns : float;  (** physical size of one lambda *)
  row_height : Mae_geom.Lambda.t;
      (** height of a standard-cell row (all cells share it) *)
  track_pitch : Mae_geom.Lambda.t;
      (** centre-to-centre spacing of routing tracks in a channel *)
  feed_through_width : Mae_geom.Lambda.t;
      (** width of the feed-through cell, the paper's [f-w] *)
  port_pitch : Mae_geom.Lambda.t;
      (** edge length consumed by one I/O port (pad pitch along a module
          edge); converts a port count into the port length of section 5 *)
  min_spacing : Mae_geom.Lambda.t;
      (** minimum spacing between adjacent devices in full-custom rows *)
  devices : Device_kind.t list;
  device_index : (string * Device_kind.t) array;
      (** the same kinds sorted by name, built at construction and read
          by {!find_device}'s binary search -- name lookups run once per
          device per module, so they must not scan [devices].  Treat as
          frozen: reads are domain-safe only because nothing mutates it. *)
}

val make :
  name:string ->
  lambda_microns:float ->
  row_height:Mae_geom.Lambda.t ->
  track_pitch:Mae_geom.Lambda.t ->
  feed_through_width:Mae_geom.Lambda.t ->
  port_pitch:Mae_geom.Lambda.t ->
  min_spacing:Mae_geom.Lambda.t ->
  devices:Device_kind.t list ->
  t
(** Validates positivity of all extents and uniqueness of device-kind
    names; raises [Invalid_argument] otherwise. *)

val find_device : t -> string -> Device_kind.t option
(** Binary search over [device_index]: O(log kinds) with no
    allocation. *)

val find_device_exn : t -> string -> Device_kind.t
(** Raises [Not_found]. *)

val device_area : t -> string -> Mae_geom.Lambda.area option

val with_devices : t -> Device_kind.t list -> t
(** Replace the device table (used when a cell library contributes kinds). *)

val fingerprint : t -> string
(** Hex digest of every parameter that can influence an estimate: the
    scalar extents (rendered as exact hex floats) plus each device
    kind's name, category and geometry, sorted by kind name.  The
    estimate store folds this into its keys, so retuning a process
    invalidates stored results by construction. *)

val pp : Format.formatter -> t -> unit
