type case = { rows : int; degree : int; nets : int }

let pp_case ppf c =
  Format.fprintf ppf "(n=%d, D=%d, H=%d)" c.rows c.degree c.nets

let case_to_string c = Format.asprintf "%a" pp_case c

let random_case ~rng ~max_rows ~max_degree ~max_nets =
  if max_rows < 1 then invalid_arg "Sweep.random_case: max_rows < 1";
  if max_degree < 1 then invalid_arg "Sweep.random_case: max_degree < 1";
  if max_nets < 1 then invalid_arg "Sweep.random_case: max_nets < 1";
  {
    rows = 1 + Mae_prob.Rng.int rng max_rows;
    degree = 1 + Mae_prob.Rng.int rng max_degree;
    nets = 1 + Mae_prob.Rng.int rng max_nets;
  }

(* Strictly smaller candidates, biggest reductions first, so a greedy
   shrink loop converges in O(log) steps per coordinate.  Every
   candidate keeps all three coordinates >= 1. *)
let shrink c =
  let reductions x =
    List.filter
      (fun v -> v >= 1 && v < x)
      (List.sort_uniq Int.compare [ 1; x / 2; x - 1 ])
  in
  List.concat
    [
      List.map (fun rows -> { c with rows }) (reductions c.rows);
      List.map (fun degree -> { c with degree }) (reductions c.degree);
      List.map (fun nets -> { c with nets }) (reductions c.nets);
    ]

let size c = c.rows + c.degree + c.nets
