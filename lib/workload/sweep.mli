(** Randomized parameter cases for the differential correctness harness.

    The probability kernels under test are indexed by the row count [n],
    the net degree [D] and the module net count [H]; a sweep case is one
    such triple.  {!random_case} draws them uniformly from a seeded
    generator and {!shrink} proposes strictly smaller candidates so a
    failing case can be reduced to a minimal reproducer. *)

type case = { rows : int; degree : int; nets : int }
(** [(n, D, H)]: rows of the module, components of the net, nets of the
    module.  All coordinates are >= 1. *)

val random_case :
  rng:Mae_prob.Rng.t -> max_rows:int -> max_degree:int -> max_nets:int -> case
(** Uniform over [1..max_rows] x [1..max_degree] x [1..max_nets].
    Raises [Invalid_argument] when any maximum is < 1. *)

val shrink : case -> case list
(** Strictly smaller candidate cases (each differs from the input in one
    coordinate), largest reduction first; empty iff the case is already
    the minimal [(1, 1, 1)]. *)

val size : case -> int
(** [rows + degree + nets]: the measure {!shrink} strictly decreases. *)

val pp_case : Format.formatter -> case -> unit

val case_to_string : case -> string
