(* The differential harness itself is test infrastructure, so it gets
   its own tier-1 coverage: the exact enumerator must agree with the
   closed forms it exists to judge, the sweep shrinker must actually
   shrink, and a small harness run must pass end to end and produce a
   well-formed report. *)

module S = Mae_test_support.Support
open Mae_check

(* Enumerate *)

let test_enumerate_small_grid () =
  for rows = 1 to 5 do
    for degree = 1 to 4 do
      let e = Enumerate.net ~rows ~degree in
      Alcotest.(check int)
        (Printf.sprintf "n=%d D=%d placements" rows degree)
        (int_of_float (Float.of_int rows ** Float.of_int degree))
        e.Enumerate.placements;
      Alcotest.(check int) "span tallies cover all placements"
        e.Enumerate.placements
        (Array.fold_left ( + ) 0 e.Enumerate.span_counts);
      Alcotest.(check int) "span 0 impossible" 0 e.Enumerate.span_counts.(0);
      (* exact span probabilities = the occupancy closed form *)
      for s = 1 to rows do
        S.check_float ~eps:1e-12
          (Printf.sprintf "n=%d D=%d P(span=%d)" rows degree s)
          (Mae_prob.Comb.choose rows s
          *. Mae_prob.Comb.surjections degree s
          /. Mae_prob.Comb.float_pow (Float.of_int rows) degree)
          (Enumerate.span_prob e s)
      done;
      (* exact feed-through probabilities = equation (5) *)
      for row = 1 to rows do
        S.check_float ~eps:1e-12
          (Printf.sprintf "n=%d D=%d feed(%d)" rows degree row)
          (Mae.Feedthrough.prob_in_row_closed ~rows ~degree ~row)
          (Enumerate.feed_prob e ~row)
      done;
      (* expectation consistent with the tallies *)
      let by_hand = ref 0. in
      for s = 1 to rows do
        by_hand := !by_hand +. (Float.of_int s *. Enumerate.span_prob e s)
      done;
      S.check_float ~eps:1e-12 "E(span)" !by_hand (Enumerate.expected_span e);
      S.check_float ~eps:1e-12 "span_dist expectation" !by_hand
        (Mae_prob.Dist.expectation (Enumerate.span_dist e))
    done
  done

let test_enumerate_validation () =
  S.raises_invalid (fun () -> ignore (Enumerate.net ~rows:0 ~degree:2));
  S.raises_invalid (fun () -> ignore (Enumerate.net ~rows:3 ~degree:0));
  (* 8^9 placements blow the 10-million-state budget *)
  S.raises_invalid (fun () -> ignore (Enumerate.net ~rows:8 ~degree:9));
  let e = Enumerate.net ~rows:4 ~degree:2 in
  S.raises_invalid (fun () -> ignore (Enumerate.feed_prob e ~row:0));
  S.raises_invalid (fun () -> ignore (Enumerate.feed_prob e ~row:5));
  S.check_float "span outside support" 0. (Enumerate.span_prob e 7)

(* Sweep *)

let test_sweep_random_case_bounds () =
  let rng = S.rng 13 in
  for _ = 1 to 500 do
    let c =
      Mae_workload.Sweep.random_case ~rng ~max_rows:8 ~max_degree:5 ~max_nets:64
    in
    if
      c.Mae_workload.Sweep.rows < 1
      || c.rows > 8
      || c.degree < 1
      || c.degree > 5
      || c.nets < 1
      || c.nets > 64
    then
      Alcotest.failf "case out of bounds: %s"
        (Mae_workload.Sweep.case_to_string c)
  done;
  S.raises_invalid (fun () ->
      ignore
        (Mae_workload.Sweep.random_case ~rng ~max_rows:0 ~max_degree:1
           ~max_nets:1))

let test_sweep_shrink_minimality () =
  let open Mae_workload.Sweep in
  Alcotest.(check (list string)) "minimal case has no candidates" []
    (List.map case_to_string (shrink { rows = 1; degree = 1; nets = 1 }));
  let c = { rows = 8; degree = 5; nets = 64 } in
  let candidates = shrink c in
  Alcotest.(check bool) "has candidates" true (candidates <> []);
  List.iter
    (fun s ->
      if size s >= size c then
        Alcotest.failf "candidate %s not smaller than %s" (case_to_string s)
          (case_to_string c);
      if s.rows < 1 || s.degree < 1 || s.nets < 1 then
        Alcotest.failf "candidate %s left the domain" (case_to_string s);
      (* one coordinate moved, the others held *)
      let moved =
        (if s.rows <> c.rows then 1 else 0)
        + (if s.degree <> c.degree then 1 else 0)
        + if s.nets <> c.nets then 1 else 0
      in
      Alcotest.(check int) "single-coordinate step" 1 moved)
    candidates

(* Harness *)

let small_config =
  { Harness.default with trials = 5_000; cases = 6; seed = 42 }

let test_harness_small_run_passes () =
  let r = Harness.run small_config in
  Alcotest.(check bool) "passed" true r.Harness.passed;
  Alcotest.(check int) "all cases ran" small_config.cases r.Harness.cases_run;
  Alcotest.(check bool) "compared something" true (r.Harness.comparisons > 0);
  Alcotest.(check bool) "no findings" true (r.Harness.findings = []);
  Alcotest.(check bool) "families populated" true (r.Harness.families <> []);
  List.iter
    (fun (f : Harness.family_stat) ->
      Alcotest.(check bool)
        (f.family ^ " compared") true (f.comparisons > 0))
    r.Harness.families;
  Alcotest.(check bool) "golden rows ran" true (r.Harness.golden <> []);
  List.iter
    (fun (g : Harness.golden_result) ->
      Alcotest.(check bool) (g.label ^ " reproduces") true g.ok)
    r.Harness.golden

let test_harness_deterministic () =
  let a = Harness.run small_config and b = Harness.run small_config in
  Alcotest.(check int) "same comparisons" a.Harness.comparisons
    b.Harness.comparisons;
  List.iter2
    (fun (x : Harness.family_stat) (y : Harness.family_stat) ->
      Alcotest.(check string) "same family order" x.family y.family;
      Alcotest.(check int) (x.family ^ " comparisons") x.comparisons
        y.comparisons;
      S.check_float ~eps:0. (x.family ^ " max delta") x.max_delta y.max_delta)
    a.Harness.families b.Harness.families

let test_harness_validates_config () =
  S.raises_invalid (fun () ->
      ignore (Harness.run { small_config with trials = 0 }));
  S.raises_invalid (fun () ->
      ignore (Harness.run { small_config with cases = 0 }));
  S.raises_invalid (fun () ->
      ignore (Harness.run { small_config with max_rows = 0 }))

let test_harness_goldens_derive () =
  let goldens = Harness.derive_goldens () in
  Alcotest.(check bool) "non-empty" true (goldens <> []);
  (* each label appears once and carries a finite value *)
  let labels = List.map fst goldens in
  Alcotest.(check int) "labels unique"
    (List.length labels)
    (List.length (List.sort_uniq String.compare labels));
  List.iter
    (fun (label, v) ->
      Alcotest.(check bool) (label ^ " finite") true (Float.is_finite v))
    goldens;
  (* and the report checks exactly these rows *)
  let r = Harness.run small_config in
  Alcotest.(check int) "report covers every golden row"
    (List.length goldens)
    (List.length r.Harness.golden)

let test_harness_report_json_round_trips () =
  let r = Harness.run small_config in
  let json = Harness.report_json small_config r in
  match Mae_obs.Json.parse (Mae_obs.Json.encode json) with
  | Error e -> Alcotest.failf "report does not parse: %s" e
  | Ok parsed ->
      let number path =
        match Mae_obs.Json.member path parsed with
        | Some n -> Option.get (Mae_obs.Json.to_number n)
        | None -> Alcotest.failf "missing %s" path
      in
      Alcotest.(check bool) "passed flag" true
        (Mae_obs.Json.member "passed" parsed = Some (Mae_obs.Json.Bool true));
      S.check_float "cases_run"
        (Float.of_int r.Harness.cases_run)
        (number "cases_run");
      S.check_float "comparisons"
        (Float.of_int r.Harness.comparisons)
        (number "comparisons");
      let families =
        Option.get (Mae_obs.Json.to_list (Option.get (Mae_obs.Json.member "families" parsed)))
      in
      Alcotest.(check int) "family rows"
        (List.length r.Harness.families)
        (List.length families);
      match Mae_obs.Json.member "findings" parsed with
      | Some (Mae_obs.Json.Array []) -> ()
      | _ -> Alcotest.fail "expected empty findings array"

let () =
  Alcotest.run "check"
    [
      ( "enumerate",
        [
          Alcotest.test_case "matches closed forms" `Quick
            test_enumerate_small_grid;
          Alcotest.test_case "validation" `Quick test_enumerate_validation;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "random case bounds" `Quick
            test_sweep_random_case_bounds;
          Alcotest.test_case "shrink minimality" `Quick
            test_sweep_shrink_minimality;
        ] );
      ( "harness",
        [
          Alcotest.test_case "small run passes" `Slow
            test_harness_small_run_passes;
          Alcotest.test_case "deterministic" `Slow test_harness_deterministic;
          Alcotest.test_case "config validation" `Quick
            test_harness_validates_config;
          Alcotest.test_case "goldens derive" `Slow test_harness_goldens_derive;
          Alcotest.test_case "report json round-trips" `Slow
            test_harness_report_json_round_trips;
        ] );
    ]
