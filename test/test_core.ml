module S = Mae_test_support.Support

(* Row model: equations (2)-(3) *)

let test_row_model_normalizes () =
  List.iter
    (fun (rows, degree) ->
      List.iter
        (fun model ->
          let d = Mae.Row_model.prob_rows ~model ~rows ~degree in
          S.check_float ~eps:1e-9
            (Printf.sprintf "mass n=%d D=%d" rows degree)
            0.
            (Mae_prob.Dist.total_mass_error d))
        [ Mae.Config.Paper_model; Mae.Config.Exact_occupancy ])
    [ (1, 1); (1, 5); (3, 2); (4, 4); (5, 9); (10, 3) ]

let test_row_model_matches_exact_when_rows_ge_degree () =
  (* The paper's k = min(n, D) heuristic is exact whenever n >= D. *)
  for rows = 1 to 8 do
    for degree = 1 to rows do
      let p = Mae.Row_model.prob_rows ~model:Mae.Config.Paper_model ~rows ~degree in
      let e =
        Mae.Row_model.prob_rows ~model:Mae.Config.Exact_occupancy ~rows ~degree
      in
      for i = 1 to degree do
        S.check_float ~eps:1e-9
          (Printf.sprintf "P(%d) n=%d D=%d" i rows degree)
          (Mae_prob.Dist.prob e i) (Mae_prob.Dist.prob p i)
      done
    done
  done

let test_row_model_known_values () =
  (* D=2, n=4: P(1 row) = 4*2/16... occupancy: P(1)=C(4,1)*1/16=0.25,
     P(2)=C(4,2)*2/16=0.75 *)
  let d = Mae.Row_model.prob_rows ~model:Mae.Config.Paper_model ~rows:4 ~degree:2 in
  S.check_float "P(1)" 0.25 (Mae_prob.Dist.prob d 1);
  S.check_float "P(2)" 0.75 (Mae_prob.Dist.prob d 2)

let test_row_model_single_row () =
  let d = Mae.Row_model.prob_rows ~model:Mae.Config.Paper_model ~rows:1 ~degree:7 in
  S.check_float "P(1)=1" 1. (Mae_prob.Dist.prob d 1);
  Alcotest.(check int) "span 1" 1
    (Mae.Row_model.expected_span ~model:Mae.Config.Paper_model ~rows:1 ~degree:7)

let test_expected_span_monotone_in_degree () =
  let rows = 6 in
  let spans =
    List.init 10 (fun i ->
        Mae.Row_model.expected_span ~model:Mae.Config.Paper_model ~rows
          ~degree:(i + 1))
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "non-decreasing" true (a <= b);
        check rest
    | [ _ ] | [] -> ()
  in
  check spans

let test_tracks_for_histogram () =
  let model = Mae.Config.Paper_model in
  let span d = Mae.Row_model.expected_span ~model ~rows:4 ~degree:d in
  Alcotest.(check int) "weighted sum"
    ((3 * span 2) + (2 * span 5))
    (Mae.Row_model.tracks_for_histogram ~model ~rows:4
       ~degree_histogram:[ (2, 3); (5, 2) ]);
  Alcotest.(check int) "zero counts skipped" 0
    (Mae.Row_model.tracks_for_histogram ~model ~rows:4 ~degree_histogram:[ (2, 0) ]);
  S.raises_invalid (fun () ->
      ignore
        (Mae.Row_model.tracks_for_histogram ~model ~rows:4
           ~degree_histogram:[ (2, -1) ]))

(* Feedthrough: equations (4)-(11) *)

let test_feedthrough_eq5_equals_closed_form () =
  for rows = 1 to 9 do
    for degree = 1 to 8 do
      for row = 1 to rows do
        S.check_float ~eps:1e-9
          (Printf.sprintf "n=%d D=%d i=%d" rows degree row)
          (Mae.Feedthrough.prob_in_row_closed ~rows ~degree ~row)
          (Mae.Feedthrough.prob_in_row ~rows ~degree ~row)
      done
    done
  done

(* Satellite of the differential-harness PR: the double sum of
   equation (5) and its closed form must agree to 1e-10 over the whole
   grid the estimators can reach, including the degenerate degree = 1
   and the boundary rows where the alternating closed form nearly
   cancels. The older random property above only sampled the grid at a
   looser 1e-9. *)
let test_feedthrough_eq5_exhaustive_grid () =
  for rows = 1 to 32 do
    for degree = 1 to 16 do
      List.iter
        (fun row ->
          let a = Mae.Feedthrough.prob_in_row ~rows ~degree ~row in
          let b = Mae.Feedthrough.prob_in_row_closed ~rows ~degree ~row in
          if Float.abs (a -. b) > 1e-10 then
            Alcotest.failf "n=%d D=%d i=%d: sum %.17g closed %.17g" rows degree
              row a b)
        (List.sort_uniq Int.compare
           [ 1; 2; (rows + 1) / 2; rows - 1; rows ]
        |> List.filter (fun r -> r >= 1 && r <= rows))
    done
  done;
  (* plus the full row range on a denser low grid *)
  for rows = 1 to 12 do
    for degree = 1 to 16 do
      for row = 1 to rows do
        let a = Mae.Feedthrough.prob_in_row ~rows ~degree ~row in
        let b = Mae.Feedthrough.prob_in_row_closed ~rows ~degree ~row in
        if Float.abs (a -. b) > 1e-10 then
          Alcotest.failf "n=%d D=%d i=%d: sum %.17g closed %.17g" rows degree
            row a b
      done
    done
  done

(* Regression: the closed form's alternating sum left a one-ulp
   *negative* residual at boundary rows (the harness shrank the
   disagreement to n=5 D=1 and n=3 D=2), and probabilities must never
   leave [0, 1]. *)
let test_feedthrough_closed_form_clamped () =
  (* the shrunk reproducers from the differential harness *)
  let p51 = Mae.Feedthrough.prob_in_row_closed ~rows:5 ~degree:1 ~row:5 in
  Alcotest.(check bool) "n=5 D=1 i=5 >= 0" true (p51 >= 0.);
  S.check_float ~eps:1e-15 "n=5 D=1 i=5 ~ 0" 0. p51;
  let p32 = Mae.Feedthrough.prob_in_row_closed ~rows:3 ~degree:2 ~row:3 in
  Alcotest.(check bool) "n=3 D=2 i=3 >= 0" true (p32 >= 0.);
  (* and globally: every probability the closed form can produce *)
  for rows = 1 to 16 do
    for degree = 1 to 10 do
      for row = 1 to rows do
        let p = Mae.Feedthrough.prob_in_row_closed ~rows ~degree ~row in
        if p < 0. || p > 1. then
          Alcotest.failf "n=%d D=%d i=%d: %.17g outside [0,1]" rows degree row p
      done;
      let pc = Mae.Feedthrough.prob_central ~rows ~degree in
      if pc < 0. || pc > 1. then
        Alcotest.failf "central n=%d D=%d: %.17g outside [0,1]" rows degree pc
    done
  done

(* Regression: on an even row count the two central rows have exactly
   symmetric probabilities; argmax_row must resolve the tie to the
   *lower* one (with the 1e-15 tolerance it shares with
   [Montecarlo.argmax_feed_through]), never drift to the upper row on
   rounding noise. *)
let test_feedthrough_argmax_tie_even_odd () =
  for half = 1 to 8 do
    let rows = 2 * half in
    for degree = 2 to 8 do
      (* the two central rows are tied by symmetry up to the one-ulp
         noise of the subtraction order -- precisely the gap the shared
         1e-15 tolerance must absorb *)
      S.check_float ~eps:1e-15 "central pair tied"
        (Mae.Feedthrough.prob_in_row_closed ~rows ~degree ~row:half)
        (Mae.Feedthrough.prob_in_row_closed ~rows ~degree ~row:(half + 1));
      Alcotest.(check int)
        (Printf.sprintf "even n=%d D=%d picks lower" rows degree)
        half
        (Mae.Feedthrough.argmax_row ~rows ~degree)
    done
  done;
  for half = 1 to 8 do
    let rows = (2 * half) + 1 in
    for degree = 2 to 8 do
      Alcotest.(check int)
        (Printf.sprintf "odd n=%d D=%d picks center" rows degree)
        (half + 1)
        (Mae.Feedthrough.argmax_row ~rows ~degree)
    done
  done

let test_feedthrough_symmetry () =
  (* P(i) = P(n+1-i): top and bottom are interchangeable *)
  let rows = 8 and degree = 4 in
  for row = 1 to rows do
    S.check_float ~eps:1e-12 "symmetric"
      (Mae.Feedthrough.prob_in_row ~rows ~degree ~row)
      (Mae.Feedthrough.prob_in_row ~rows ~degree ~row:(rows + 1 - row))
  done

let test_feedthrough_edge_rows_zero () =
  (* "generally neither the top row nor the bottom row have feed-throughs" *)
  for degree = 1 to 6 do
    S.check_float ~eps:1e-12 "top" 0.
      (Mae.Feedthrough.prob_in_row ~rows:5 ~degree ~row:1);
    S.check_float ~eps:1e-12 "bottom" 0.
      (Mae.Feedthrough.prob_in_row ~rows:5 ~degree ~row:5)
  done

let test_feedthrough_central_argmax () =
  (* The paper's claim, verified over a grid: the central row always has
     the largest probability regardless of D. *)
  for rows = 3 to 15 do
    for degree = 2 to 10 do
      let best = Mae.Feedthrough.argmax_row ~rows ~degree in
      let central_lo = (rows + 1) / 2 and central_hi = (rows + 2) / 2 in
      if best < central_lo || best > central_hi then
        Alcotest.failf "rows=%d degree=%d: argmax %d" rows degree best
    done
  done

let test_feedthrough_equation_nine () =
  (* p = ((n-1)/n)^2 / 2 *)
  S.check_float "n=1" 0. (Mae.Feedthrough.prob_two_component ~rows:1);
  S.check_float "n=2" 0.125 (Mae.Feedthrough.prob_two_component ~rows:2);
  S.check_float "n=5" 0.32 (Mae.Feedthrough.prob_two_component ~rows:5);
  (* the limit claimed in equation (9) *)
  S.check_close ~rel:1e-3 "limit 0.5" 0.5
    (Mae.Feedthrough.prob_two_component ~rows:100000)

let test_feedthrough_eq9_matches_eq8_for_two_components () =
  (* For D=2 the general central-row formula reduces to equation (9). *)
  List.iter
    (fun rows ->
      S.check_float ~eps:1e-12
        (Printf.sprintf "n=%d" rows)
        (Mae.Feedthrough.prob_two_component ~rows)
        (Mae.Feedthrough.prob_central ~rows ~degree:2))
    [ 1; 3; 5; 7; 9; 11 ]

let test_expected_feed_throughs () =
  (* E(M) = ceil(H * p) by the binomial mean *)
  let rows = 5 in
  let p = Mae.Feedthrough.prob_two_component ~rows in
  List.iter
    (fun h ->
      Alcotest.(check int)
        (Printf.sprintf "H=%d" h)
        (Float.to_int (Float.ceil ((Float.of_int h *. p) -. 1e-9)))
        (Mae.Feedthrough.expected_feed_throughs ~net_count:h ~rows))
    [ 0; 1; 5; 17; 40 ];
  Alcotest.(check int) "no nets" 0
    (Mae.Feedthrough.expected_feed_throughs ~net_count:0 ~rows:4);
  Alcotest.(check int) "single row never needs feeds" 0
    (Mae.Feedthrough.expected_feed_throughs ~net_count:50 ~rows:1)

let test_feedthrough_stationary_point () =
  (* equations (6)-(7): the derivative of P(i) w.r.t. the row position
     vanishes at the central row; checked numerically via the closed form
     extended to real-valued positions *)
  List.iter
    (fun (rows, degree) ->
      let n = Float.of_int rows in
      let p pos =
        (* the closed form of equation (5) at a real-valued row position *)
        let not_above = (n -. pos +. 1.) /. n in
        let not_below = pos /. n in
        1.
        -. (not_above ** Float.of_int degree)
        -. (not_below ** Float.of_int degree)
        +. ((1. /. n) ** Float.of_int degree)
      in
      let center = Mae.Feedthrough.central_row ~rows in
      let h = 1e-5 in
      let derivative = (p (center +. h) -. p (center -. h)) /. (2. *. h) in
      if Float.abs derivative > 1e-6 then
        Alcotest.failf "n=%d D=%d: dP/di at center = %g" rows degree derivative;
      (* and it is a maximum: second difference negative *)
      let second = p (center +. 0.1) +. p (center -. 0.1) -. (2. *. p center) in
      Alcotest.(check bool) "maximum" true (second < 0.))
    [ (3, 2); (5, 2); (5, 4); (7, 3); (9, 6); (11, 2) ]

(* Stdcell: equations (1), (12), (14) *)

let test_stdcell_equation_twelve_arithmetic () =
  let rows = 3 in
  let est = Mae.Stdcell.estimate ~rows S.counter8 S.nmos in
  let stats = Mae_netlist.Stats.compute S.counter8 S.nmos in
  (* reconstruct each factor by hand *)
  let tracks =
    Mae.Row_model.tracks_for_histogram ~model:Mae.Config.Paper_model ~rows
      ~degree_histogram:stats.Mae_netlist.Stats.degree_histogram
  in
  Alcotest.(check int) "tracks" tracks est.Mae.Estimate.tracks;
  let connected =
    List.fold_left (fun acc (_, y) -> acc + y) 0
      stats.Mae_netlist.Stats.degree_histogram
  in
  let feeds = Mae.Feedthrough.expected_feed_throughs ~net_count:connected ~rows in
  Alcotest.(check int) "feeds" feeds est.feed_throughs;
  let height = (3. *. 40.) +. (Float.of_int tracks *. 7.) in
  S.check_float "height" height est.height;
  let width =
    (Float.of_int stats.Mae_netlist.Stats.device_count
     *. stats.Mae_netlist.Stats.average_width /. 3.)
    +. (Float.of_int feeds *. 7.)
  in
  S.check_float "width" width est.width;
  S.check_float "area = h*w" (height *. width) est.area;
  Alcotest.(check bool) "area check helper" true (Mae.Estimate.stdcell_area_check est);
  (* equation 14: aspect = width / height before clamping *)
  S.check_float "aspect raw" (width /. height)
    (Mae_geom.Aspect.ratio est.aspect_raw)

let test_stdcell_aspect_clamped () =
  let est = Mae.Stdcell.estimate ~rows:3 S.counter8 S.nmos in
  let r = Mae_geom.Aspect.ratio est.Mae.Estimate.aspect in
  let n = if r > 1. then r else 1. /. r in
  Alcotest.(check bool) "within 1..2 band" true (n >= 1. -. 1e-9 && n <= 2. +. 1e-9);
  (* with the raw config nothing is clamped *)
  let raw =
    Mae.Stdcell.estimate ~config:Mae.Config.paper_raw ~rows:3 S.counter8 S.nmos
  in
  S.check_float "raw aspect = eq 14"
    (Mae_geom.Aspect.ratio raw.Mae.Estimate.aspect_raw)
    (Mae_geom.Aspect.ratio raw.Mae.Estimate.aspect)

let test_stdcell_monotone_in_circuit_growth () =
  (* duplicating the circuit cannot shrink the estimate *)
  let small = Mae.Stdcell.estimate ~rows:4 S.counter8 S.nmos in
  let doubled = Mae_workload.Mutate.duplicate S.counter8 in
  let big = Mae.Stdcell.estimate ~rows:4 doubled S.nmos in
  Alcotest.(check bool) "bigger circuit bigger area" true
    (big.Mae.Estimate.area > small.Mae.Estimate.area)

let test_stdcell_track_sharing_config () =
  let base = Mae.Stdcell.estimate ~rows:4 S.counter8 S.nmos in
  let shared = Mae.Extensions.with_track_sharing ~factor:0.5 ~rows:4 S.counter8 S.nmos in
  Alcotest.(check int) "half the tracks (ceil)"
    ((base.Mae.Estimate.tracks + 1) / 2)
    shared.Mae.Estimate.tracks;
  Alcotest.(check bool) "smaller area" true
    (shared.Mae.Estimate.area < base.Mae.Estimate.area);
  S.raises_invalid (fun () ->
      ignore (Mae.Extensions.with_track_sharing ~factor:1.5 ~rows:4 S.counter8 S.nmos))

let test_stdcell_validation () =
  S.raises_invalid (fun () -> ignore (Mae.Stdcell.estimate ~rows:0 S.counter8 S.nmos));
  let empty =
    Mae_netlist.Builder.build
      (Mae_netlist.Builder.create ~name:"e" ~technology:"nmos25")
  in
  S.raises_invalid (fun () -> ignore (Mae.Stdcell.estimate ~rows:1 empty S.nmos))

(* Row selection: section 5 *)

let test_rows_for_divisor () =
  Alcotest.(check int) "sqrt(160000)/(2*40) = 5" 5
    (Mae.Row_select.rows_for_divisor ~cell_area:160000. ~row_height:40. ~divisor:2);
  Alcotest.(check int) "floors at 1" 1
    (Mae.Row_select.rows_for_divisor ~cell_area:100. ~row_height:40. ~divisor:9);
  S.raises_invalid (fun () ->
      ignore (Mae.Row_select.rows_for_divisor ~cell_area:0. ~row_height:40. ~divisor:2))

let test_row_length () =
  S.check_float "area / (n*rh)" 100.
    (Mae.Row_select.row_length ~cell_area:8000. ~row_height:40. ~rows:2)

let test_initial_rows_port_constraint () =
  (* initial_rows must produce a row long enough for all ports *)
  List.iter
    (fun circuit ->
      let rows = Mae.Row_select.initial_rows circuit S.nmos in
      let stats = Mae_netlist.Stats.compute circuit S.nmos in
      let length =
        Mae.Row_select.row_length
          ~cell_area:stats.Mae_netlist.Stats.total_device_area ~row_height:40.
          ~rows
      in
      let ports =
        Float.of_int stats.Mae_netlist.Stats.port_count *. 8.
      in
      Alcotest.(check bool)
        (circuit.Mae_netlist.Circuit.name ^ " ports fit")
        true
        (length >= ports || rows = 1))
    [ S.counter8; S.full_adder; Mae_workload.Generators.alu 4 ]

let test_row_candidates () =
  let candidates = Mae.Row_select.candidates ~max_count:3 S.counter8 S.nmos in
  Alcotest.(check bool) "non-empty" true (candidates <> []);
  Alcotest.(check bool) "strictly decreasing" true
    (let rec ok = function
       | a :: (b :: _ as rest) -> a > b && ok rest
       | [ _ ] | [] -> true
     in
     ok candidates);
  Alcotest.(check bool) "at most 3" true (List.length candidates <= 3);
  S.raises_invalid (fun () ->
      ignore (Mae.Row_select.candidates ~max_count:0 S.counter8 S.nmos))

(* Full custom: equation (13) *)

let test_fullcustom_two_component_free () =
  (* the Table 1 footnote: a module of only <=2-component nets has zero
     wire area, so estimated area = device area *)
  let chain = Mae_workload.Generators.pass_chain 8 in
  let est = Mae.Fullcustom.estimate ~mode:Mae.Config.Exact_areas chain S.nmos in
  S.check_float "wire area 0" 0. est.Mae.Estimate.wire_area;
  let stats = Mae_netlist.Stats.compute chain S.nmos in
  S.check_float "device area only" stats.Mae_netlist.Stats.total_device_area
    est.Mae.Estimate.area

let test_fullcustom_strict_mode_charges_pairs () =
  let chain = Mae_workload.Generators.pass_chain 8 in
  let config = { Mae.Config.default with two_component_free = false } in
  let est = Mae.Fullcustom.estimate ~config ~mode:Mae.Config.Exact_areas chain S.nmos in
  Alcotest.(check bool) "strict charges pairs" true
    (est.Mae.Estimate.wire_area > 0.)

let test_fullcustom_net_areas () =
  let tx = S.full_adder_tx in
  let nets = Mae.Fullcustom.net_areas ~mode:Mae.Config.Exact_areas tx S.nmos in
  Alcotest.(check int) "one entry per net"
    (Mae_netlist.Circuit.net_count tx)
    (List.length nets);
  List.iter
    (fun (n : Mae.Fullcustom.net_area) ->
      if n.degree <= 2 then S.check_float "free" 0. n.interconnect_area
      else begin
        (* A_j = track_pitch * ceil(D/2) * mean member width (all 4L here) *)
        let expected = 7. *. (Float.of_int ((n.degree + 1) / 2) *. 4.) in
        S.check_float "charged" expected n.interconnect_area
      end)
    nets

let test_fullcustom_exact_equals_average_for_uniform_widths () =
  (* all transistors in the expanded adder are 4L wide, so both modes
     coincide *)
  let exact, average = Mae.Fullcustom.estimate_both S.full_adder_tx S.nmos in
  S.check_float "same area" exact.Mae.Estimate.area average.Mae.Estimate.area

let test_fullcustom_modes_differ_with_mixed_widths () =
  let b = Mae_netlist.Builder.create ~name:"mixed" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"a" ~kind:"nenh" ~nets:[ "x"; "y"; "z" ]);
  ignore (Mae_netlist.Builder.add_device b ~name:"c" ~kind:"nenh_wide" ~nets:[ "x"; "y"; "w" ]);
  ignore (Mae_netlist.Builder.add_device b ~name:"d" ~kind:"ndep" ~nets:[ "x"; "q"; "r" ]);
  let c = Mae_netlist.Builder.build b in
  let exact, average = Mae.Fullcustom.estimate_both c S.nmos in
  Alcotest.(check bool) "different device areas" true
    (not (S.approx exact.Mae.Estimate.device_area average.Mae.Estimate.device_area))

let test_fullcustom_aspect_square_when_ports_fit () =
  let est = Mae.Fullcustom.estimate ~mode:Mae.Config.Exact_areas S.full_adder_tx S.nmos in
  S.check_float "1:1" 1. (Mae_geom.Aspect.ratio est.Mae.Estimate.aspect_raw);
  S.check_float "w = h" est.Mae.Estimate.width est.Mae.Estimate.height

let test_fullcustom_aspect_stretched_by_ports () =
  (* a tiny module with many ports cannot stay square *)
  let b = Mae_netlist.Builder.create ~name:"porty" ~technology:"nmos25" in
  for i = 0 to 19 do
    let n = Printf.sprintf "p%d" i in
    Mae_netlist.Builder.add_port b ~name:n ~direction:Mae_netlist.Port.Input ~net:n
  done;
  ignore
    (Mae_netlist.Builder.add_device b ~name:"t" ~kind:"nenh"
       ~nets:(List.init 20 (Printf.sprintf "p%d")));
  let c = Mae_netlist.Builder.build b in
  let est = Mae.Fullcustom.estimate ~mode:Mae.Config.Exact_areas c S.nmos in
  (* width must equal the port length 20 * 8 = 160 *)
  S.check_float "width = port length" 160. est.Mae.Estimate.width;
  Alcotest.(check bool) "wider than tall" true
    (est.Mae.Estimate.width > est.Mae.Estimate.height)

(* Aspect ratio helpers *)

let test_aspect_clamp_band () =
  let config = Mae.Config.default in
  let clamp r =
    Mae_geom.Aspect.ratio (Mae.Aspect_ratio.clamp config (Mae_geom.Aspect.of_ratio r))
  in
  S.check_float "in band unchanged" 1.5 (clamp 1.5);
  S.check_float "above band" 2. (clamp 3.7);
  S.check_float "below band (inverted)" 0.5 (clamp 0.2);
  S.check_float "exactly 1" 1. (clamp 1.)

let test_port_length () =
  S.check_float "ports * pitch" 40.
    (Mae.Aspect_ratio.port_length ~port_count:5 ~process:S.nmos)

(* Extensions *)

let test_aspect_candidates () =
  let candidates =
    Mae.Extensions.fullcustom_aspect_candidates ~area:10000. ~port_count:2 S.nmos
  in
  Alcotest.(check int) "five shapes" 5 (List.length candidates);
  List.iter
    (fun (w, h, _) ->
      S.check_close ~rel:1e-9 "area preserved" 10000. (w *. h);
      let r = w /. h in
      Alcotest.(check bool) "in 1..2" true (r >= 1. -. 1e-9 && r <= 2. +. 1e-9))
    candidates;
  (* infeasible ports keep all candidates rather than none *)
  let crowded =
    Mae.Extensions.fullcustom_aspect_candidates ~area:100. ~port_count:50 S.nmos
  in
  Alcotest.(check int) "all kept" 5 (List.length crowded)

let test_stdcell_shape_candidates () =
  let shapes = Mae.Extensions.stdcell_shape_candidates S.counter8 S.nmos in
  Alcotest.(check bool) "non-empty" true (shapes <> []);
  let rows = List.map (fun (e : Mae.Estimate.stdcell) -> e.rows) shapes in
  Alcotest.(check bool) "distinct row counts" true
    (List.length (List.sort_uniq Int.compare rows) = List.length rows)

let test_calibrate_sharing_factor () =
  Alcotest.(check bool) "empty" true (Mae.Extensions.calibrate_sharing_factor [] = None);
  let est = Mae.Stdcell.estimate ~rows:3 S.counter8 S.nmos in
  begin
    match Mae.Extensions.calibrate_sharing_factor [ (est, est.Mae.Estimate.area /. 2.) ] with
    | Some f -> S.check_float "half" 0.5 f
    | None -> Alcotest.fail "expected factor"
  end;
  match Mae.Extensions.calibrate_sharing_factor [ (est, est.Mae.Estimate.area *. 3.) ] with
  | Some f -> S.check_float "clipped at 1" 1. f
  | None -> Alcotest.fail "expected factor"

(* Gate-array extension *)

let test_gatearray_site_demand () =
  (* counter8: every gate maps through the nMOS templates *)
  match Mae.Gatearray.site_demand S.counter8 S.nmos with
  | Error e -> Alcotest.failf "site demand: %s" e
  | Ok demand ->
      Alcotest.(check bool) "at least one site per device" true
        (demand >= Mae_netlist.Circuit.device_count S.counter8);
      (* a transistor-level circuit costs one site per 4 transistors *)
      let chain = Mae_workload.Generators.pass_chain 8 in
      begin
        match Mae.Gatearray.site_demand chain S.nmos with
        | Ok d -> Alcotest.(check int) "8 tx -> 8 sites (1 each)" 8 d
        | Error e -> Alcotest.failf "chain: %s" e
      end

let test_gatearray_estimate () =
  match Mae.Gatearray.estimate S.counter8 S.nmos with
  | Error e -> Alcotest.failf "estimate: %s" e
  | Ok e ->
      Alcotest.(check bool) "capacity covers demand" true
        (e.Mae.Gatearray.array_rows * e.Mae.Gatearray.array_columns
         >= e.Mae.Gatearray.sites);
      Alcotest.(check bool) "sites cover equivalents with margin" true
        (e.Mae.Gatearray.sites > e.Mae.Gatearray.gate_equivalents);
      S.check_float "area consistent" (e.Mae.Gatearray.width *. e.Mae.Gatearray.height)
        e.Mae.Gatearray.area;
      (* prediffused arrays waste area: bigger than the SC upper bound's
         cell portion *)
      let stats = Mae_netlist.Stats.compute S.counter8 S.nmos in
      Alcotest.(check bool) "bigger than active area" true
        (e.Mae.Gatearray.area > stats.Mae_netlist.Stats.total_device_area)

let test_gatearray_monotone () =
  let small = Result.get_ok (Mae.Gatearray.estimate S.counter8 S.nmos) in
  let doubled = Mae_workload.Mutate.duplicate S.counter8 in
  let big = Result.get_ok (Mae.Gatearray.estimate doubled S.nmos) in
  Alcotest.(check bool) "monotone in size" true
    (big.Mae.Gatearray.area > small.Mae.Gatearray.area)

let test_gatearray_params_validation () =
  let p = Mae.Gatearray.default_params S.nmos in
  Alcotest.(check bool) "default valid" true
    (Result.is_ok (Mae.Gatearray.validate_params p));
  Alcotest.(check bool) "bad utilization" true
    (Result.is_error
       (Mae.Gatearray.validate_params { p with Mae.Gatearray.utilization = 1.5 }));
  Alcotest.(check bool) "bad sites" true
    (Result.is_error
       (Mae.Gatearray.validate_params
          { p with Mae.Gatearray.site_transistors = 0 }));
  (* unknown kind errors cleanly *)
  let b = Mae_netlist.Builder.create ~name:"x" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"u" ~kind:"quantum" ~nets:[ "a" ]);
  let c = Mae_netlist.Builder.build b in
  Alcotest.(check bool) "unknown kind errors" true
    (Result.is_error (Mae.Gatearray.site_demand c S.nmos))

let test_gatearray_routability_uses_track_model () =
  match Mae.Gatearray.estimate S.counter8 S.nmos with
  | Error e -> Alcotest.failf "estimate: %s" e
  | Ok e ->
      let stats = Mae_netlist.Stats.compute S.counter8 S.nmos in
      let tracks =
        Mae.Row_model.tracks_for_histogram ~model:Mae.Config.Paper_model
          ~rows:e.Mae.Gatearray.array_rows
          ~degree_histogram:stats.Mae_netlist.Stats.degree_histogram
      in
      S.check_float "per-channel expectation"
        (Float.of_int tracks /. Float.of_int e.Mae.Gatearray.array_rows)
        e.Mae.Gatearray.expected_tracks_per_channel

let test_gatearray_routable_master () =
  match Mae.Gatearray.estimate_routable S.counter8 S.nmos with
  | Error e -> Alcotest.failf "routable: %s" e
  | Ok e ->
      Alcotest.(check bool) "routable" true e.Mae.Gatearray.routable;
      let base = Result.get_ok (Mae.Gatearray.estimate S.counter8 S.nmos) in
      Alcotest.(check bool) "no smaller than the squarest array" true
        (e.Mae.Gatearray.array_rows >= base.Mae.Gatearray.array_rows)

(* Explain: the breakdowns must reconcile with the estimates *)

let test_explain_stdcell_reconciles () =
  let rows = 3 in
  let est = Mae.Stdcell.estimate ~rows S.counter8 S.nmos in
  let b = Mae.Explain.stdcell ~rows S.counter8 S.nmos in
  let class_total =
    List.fold_left (fun acc c -> acc + c.Mae.Explain.tracks) 0 b.Mae.Explain.classes
  in
  Alcotest.(check int) "classes sum to total" b.Mae.Explain.total_tracks class_total;
  Alcotest.(check int) "matches estimate tracks" est.Mae.Estimate.tracks
    b.Mae.Explain.total_tracks;
  Alcotest.(check int) "matches estimate feeds" est.feed_throughs
    b.Mae.Explain.expected_feed_throughs;
  S.check_float "height reconstructs" est.height
    (b.Mae.Explain.cell_height +. b.Mae.Explain.track_height);
  S.check_float "width reconstructs" est.width
    (b.Mae.Explain.cell_width +. b.Mae.Explain.feed_width)

let test_explain_fullcustom_reconciles () =
  let est =
    Mae.Fullcustom.estimate ~mode:Mae.Config.Exact_areas S.full_adder_tx S.nmos
  in
  let b =
    Mae.Explain.fullcustom ~mode:Mae.Config.Exact_areas S.full_adder_tx S.nmos
  in
  let charged_total =
    List.fold_left (fun acc (_, _, a) -> acc +. a) 0. b.Mae.Explain.charged_nets
  in
  S.check_float "charged nets sum to wire area" est.Mae.Estimate.wire_area
    charged_total;
  S.check_float "device area matches" est.device_area b.Mae.Explain.device_area;
  Alcotest.(check int) "free + charged = nets"
    (Mae_netlist.Circuit.net_count S.full_adder_tx)
    (b.Mae.Explain.free_nets + List.length b.Mae.Explain.charged_nets);
  (* descending order *)
  let rec desc = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) -> a >= b && desc rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted by area" true (desc b.Mae.Explain.charged_nets)

(* Config *)

let test_config_validation () =
  Alcotest.(check bool) "default ok" true
    (Result.is_ok (Mae.Config.validate Mae.Config.default));
  Alcotest.(check bool) "bad factor" true
    (Result.is_error
       (Mae.Config.validate
          { Mae.Config.default with track_sharing_factor = Some 0. }));
  Alcotest.(check bool) "bad clamp" true
    (Result.is_error
       (Mae.Config.validate { Mae.Config.default with aspect_clamp = Some (2., 1.) }))

(* Driver: the Figure 1 pipeline *)

let test_driver_runs_hdl () =
  let registry = Mae_tech.Registry.create () in
  let hdl =
    "module m { technology nmos25; port a in; port y out;\n\
     device i1 inv (a, m); device i2 inv (m, y); }"
  in
  match Mae.Driver.run_string ~registry hdl with
  | Error e -> Alcotest.failf "driver: %s" (Format.asprintf "%a" Mae.Driver.pp_error e)
  | Ok [ report ] ->
      Alcotest.(check string) "module" "m" report.circuit.Mae_netlist.Circuit.name;
      Alcotest.(check bool) "expanded to transistors" true
        (report.expanded <> None);
      let sc =
        match Mae.Driver.stdcell report with
        | Some sc -> sc
        | None -> Alcotest.fail "no stdcell result in the default method set"
      in
      let fce =
        match Mae.Driver.fullcustom_exact report with
        | Some fc -> fc
        | None -> Alcotest.fail "no fullcustom-exact result"
      in
      Alcotest.(check bool) "positive sc area" true (sc.Mae.Estimate.area > 0.);
      Alcotest.(check bool) "positive fc area" true (fce.Mae.Estimate.area > 0.);
      Alcotest.(check bool) "fc smaller than sc for tiny module" true
        (fce.Mae.Estimate.area < sc.Mae.Estimate.area)
  | Ok _ -> Alcotest.fail "expected one report"

let test_driver_unknown_process () =
  let registry = Mae_tech.Registry.create () in
  let hdl = "module m { technology alien9; port a in; device i inv (a, y); }" in
  match Mae.Driver.run_string ~registry hdl with
  | Error (Mae.Driver.Unknown_process { technology = "alien9"; _ }) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Unknown_process"

let test_driver_validation_failure () =
  let registry = Mae_tech.Registry.create () in
  let hdl = "module m { technology nmos25; device u alien (a, y); }" in
  match Mae.Driver.run_string ~registry hdl with
  | Error (Mae.Driver.Validation_failed { issues; _ }) ->
      Alcotest.(check bool) "has issues" true (issues <> [])
  | Error _ | Ok _ -> Alcotest.fail "expected Validation_failed"

let test_driver_parse_error () =
  let registry = Mae_tech.Registry.create () in
  match Mae.Driver.run_string ~registry "module {" with
  | Error (Mae.Driver.Parse_error _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Parse_error"

let test_driver_transistor_level_not_expanded () =
  let registry = Mae_tech.Registry.create () in
  let chain = Mae_workload.Generators.pass_chain 4 in
  match Mae.Driver.run_circuit ~registry chain with
  | Error _ -> Alcotest.fail "driver failed"
  | Ok report -> Alcotest.(check bool) "no expansion" true (report.expanded = None)

(* Properties *)

let props =
  let open QCheck2.Gen in
  [
    S.qtest "eq5 equals closed form (random)"
      (triple (int_range 1 20) (int_range 1 12) (int_range 1 20))
      (fun (rows, degree, row) ->
        let row = ((row - 1) mod rows) + 1 in
        S.approx ~eps:1e-9
          (Mae.Feedthrough.prob_in_row ~rows ~degree ~row)
          (Mae.Feedthrough.prob_in_row_closed ~rows ~degree ~row));
    S.qtest "feed probability in [0,1]"
      (pair (int_range 1 30) (int_range 1 15))
      (fun (rows, degree) ->
        let p = Mae.Feedthrough.prob_central ~rows ~degree in
        p >= -1e-12 && p <= 1. +. 1e-12);
    S.qtest "expected span between 1 and min(n,D)"
      (pair (int_range 1 12) (int_range 1 12))
      (fun (rows, degree) ->
        let s =
          Mae.Row_model.expected_span ~model:Mae.Config.Paper_model ~rows ~degree
        in
        s >= 1 && s <= Stdlib.min rows degree);
    S.qtest "stdcell estimate scales with device count"
      (pair int (int_range 10 60))
      (fun (seed, devices) ->
        let params =
          {
            Mae_workload.Random_circuit.default_params with
            devices;
            primary_outputs = Stdlib.min 8 devices;
          }
        in
        let c = Mae_workload.Random_circuit.generate ~rng:(S.rng seed) params in
        let small = Mae.Stdcell.estimate ~rows:3 c S.nmos in
        let big = Mae.Stdcell.estimate ~rows:3 (Mae_workload.Mutate.duplicate c) S.nmos in
        big.Mae.Estimate.area > small.Mae.Estimate.area);
    S.qtest "fullcustom area >= device area" (pair int (int_range 5 40))
      (fun (seed, devices) ->
        let params =
          {
            Mae_workload.Random_circuit.default_params with
            devices;
            primary_outputs = Stdlib.min 8 devices;
          }
        in
        let c = Mae_workload.Random_circuit.generate ~rng:(S.rng seed) params in
        let est = Mae.Fullcustom.estimate ~mode:Mae.Config.Exact_areas c S.nmos in
        est.Mae.Estimate.area >= est.Mae.Estimate.device_area -. 1e-9);
  ]

let () =
  Alcotest.run "core"
    [
      ( "row_model",
        [
          Alcotest.test_case "normalizes" `Quick test_row_model_normalizes;
          Alcotest.test_case "paper = exact when n >= D" `Quick
            test_row_model_matches_exact_when_rows_ge_degree;
          Alcotest.test_case "known values" `Quick test_row_model_known_values;
          Alcotest.test_case "single row" `Quick test_row_model_single_row;
          Alcotest.test_case "span monotone in D" `Quick
            test_expected_span_monotone_in_degree;
          Alcotest.test_case "histogram tracks" `Quick test_tracks_for_histogram;
        ] );
      ( "feedthrough",
        [
          Alcotest.test_case "eq5 = closed form" `Quick
            test_feedthrough_eq5_equals_closed_form;
          Alcotest.test_case "eq5 = closed form (exhaustive, 1e-10)" `Quick
            test_feedthrough_eq5_exhaustive_grid;
          Alcotest.test_case "closed form clamped to [0,1]" `Quick
            test_feedthrough_closed_form_clamped;
          Alcotest.test_case "argmax tie: even/odd rows" `Quick
            test_feedthrough_argmax_tie_even_odd;
          Alcotest.test_case "symmetry" `Quick test_feedthrough_symmetry;
          Alcotest.test_case "edge rows zero" `Quick test_feedthrough_edge_rows_zero;
          Alcotest.test_case "central argmax" `Quick test_feedthrough_central_argmax;
          Alcotest.test_case "equation 9" `Quick test_feedthrough_equation_nine;
          Alcotest.test_case "eq9 = eq8 at D=2" `Quick
            test_feedthrough_eq9_matches_eq8_for_two_components;
          Alcotest.test_case "E(M)" `Quick test_expected_feed_throughs;
          Alcotest.test_case "eq 6-7 stationary point" `Quick
            test_feedthrough_stationary_point;
        ] );
      ( "stdcell",
        [
          Alcotest.test_case "equation 12 arithmetic" `Quick
            test_stdcell_equation_twelve_arithmetic;
          Alcotest.test_case "aspect clamp" `Quick test_stdcell_aspect_clamped;
          Alcotest.test_case "monotone growth" `Quick
            test_stdcell_monotone_in_circuit_growth;
          Alcotest.test_case "track sharing config" `Quick
            test_stdcell_track_sharing_config;
          Alcotest.test_case "validation" `Quick test_stdcell_validation;
        ] );
      ( "row_select",
        [
          Alcotest.test_case "rows_for_divisor" `Quick test_rows_for_divisor;
          Alcotest.test_case "row_length" `Quick test_row_length;
          Alcotest.test_case "port constraint" `Quick
            test_initial_rows_port_constraint;
          Alcotest.test_case "candidates" `Quick test_row_candidates;
        ] );
      ( "fullcustom",
        [
          Alcotest.test_case "two-component free" `Quick
            test_fullcustom_two_component_free;
          Alcotest.test_case "strict mode" `Quick
            test_fullcustom_strict_mode_charges_pairs;
          Alcotest.test_case "net areas" `Quick test_fullcustom_net_areas;
          Alcotest.test_case "uniform widths: modes equal" `Quick
            test_fullcustom_exact_equals_average_for_uniform_widths;
          Alcotest.test_case "mixed widths: modes differ" `Quick
            test_fullcustom_modes_differ_with_mixed_widths;
          Alcotest.test_case "square aspect" `Quick
            test_fullcustom_aspect_square_when_ports_fit;
          Alcotest.test_case "port-stretched aspect" `Quick
            test_fullcustom_aspect_stretched_by_ports;
        ] );
      ( "aspect",
        [
          Alcotest.test_case "clamp band" `Quick test_aspect_clamp_band;
          Alcotest.test_case "port length" `Quick test_port_length;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "fc candidates" `Quick test_aspect_candidates;
          Alcotest.test_case "sc candidates" `Quick test_stdcell_shape_candidates;
          Alcotest.test_case "calibration" `Quick test_calibrate_sharing_factor;
        ] );
      ( "gatearray",
        [
          Alcotest.test_case "site demand" `Quick test_gatearray_site_demand;
          Alcotest.test_case "estimate" `Quick test_gatearray_estimate;
          Alcotest.test_case "monotone" `Quick test_gatearray_monotone;
          Alcotest.test_case "params validation" `Quick
            test_gatearray_params_validation;
          Alcotest.test_case "routability model" `Quick
            test_gatearray_routability_uses_track_model;
          Alcotest.test_case "routable master" `Quick
            test_gatearray_routable_master;
        ] );
      ( "explain",
        [
          Alcotest.test_case "stdcell reconciles" `Quick
            test_explain_stdcell_reconciles;
          Alcotest.test_case "fullcustom reconciles" `Quick
            test_explain_fullcustom_reconciles;
        ] );
      ("config", [ Alcotest.test_case "validation" `Quick test_config_validation ]);
      ( "driver",
        [
          Alcotest.test_case "runs hdl" `Quick test_driver_runs_hdl;
          Alcotest.test_case "unknown process" `Quick test_driver_unknown_process;
          Alcotest.test_case "validation failure" `Quick
            test_driver_validation_failure;
          Alcotest.test_case "parse error" `Quick test_driver_parse_error;
          Alcotest.test_case "transistor level" `Quick
            test_driver_transistor_level_not_expanded;
        ] );
      ("properties", props);
    ]
