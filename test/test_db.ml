module S = Mae_test_support.Support

let report () =
  let registry = Mae_tech.Registry.create () in
  match Mae.Driver.run_circuit ~registry S.full_adder with
  | Ok r -> r
  | Error _ -> Alcotest.fail "driver failed"

let record_of_report_exn r =
  match Mae_db.Record.of_report r with
  | Ok record -> record
  | Error msg -> Alcotest.failf "of_report: %s" (Mae_db.Record.of_report_error_to_string msg)

let test_record_of_report () =
  let r = report () in
  let record = record_of_report_exn r in
  Alcotest.(check string) "name" "full_adder" record.Mae_db.Record.module_name;
  Alcotest.(check string) "technology" "nmos25" record.technology;
  Alcotest.(check int) "devices" 5 record.devices;
  Alcotest.(check int) "nets" 8 record.nets;
  Alcotest.(check int) "ports" 5 record.ports;
  let sc = Option.get (Mae.Driver.stdcell r) in
  let fce = Option.get (Mae.Driver.fullcustom_exact r) in
  S.check_float "sc area" sc.Mae.Estimate.area record.sc_area;
  S.check_float "fc exact area" fce.Mae.Estimate.area record.fc_exact_area;
  (* shapes: one per sweep entry plus the two full-custom variants *)
  Alcotest.(check int) "shape count"
    (List.length (Mae.Driver.stdcell_sweep r) + 2)
    (List.length record.shapes)

(* a narrowed method set cannot feed the floor planner: typed refusal,
   not a crash *)
let test_record_needs_default_methods () =
  let registry = Mae_tech.Registry.create () in
  match
    Mae.Driver.run_circuit ~registry ~methods:[ "fullcustom-exact" ]
      S.full_adder
  with
  | Error _ -> Alcotest.fail "driver failed"
  | Ok r ->
      Alcotest.(check bool) "of_report refuses" true
        (Result.is_error (Mae_db.Record.of_report r))

let test_store_roundtrip () =
  let store = Mae_db.Store.create () in
  Mae_db.Store.add store (record_of_report_exn (report ()));
  let registry = Mae_tech.Registry.create () in
  begin
    match Mae.Driver.run_circuit ~registry S.counter8 with
    | Ok r -> Mae_db.Store.add store (record_of_report_exn r)
    | Error _ -> Alcotest.fail "driver failed"
  end;
  let text = Mae_db.Store.to_string store in
  match Mae_db.Store.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok store' ->
      Alcotest.(check (list string)) "names preserved"
        (Mae_db.Store.names store) (Mae_db.Store.names store');
      List.iter2
        (fun (a : Mae_db.Record.t) b ->
          Alcotest.(check bool) ("record " ^ a.module_name) true
            (Mae_db.Record.equal a b))
        (Mae_db.Store.records store)
        (Mae_db.Store.records store')

let test_store_replaces () =
  let store = Mae_db.Store.create () in
  let record = record_of_report_exn (report ()) in
  Mae_db.Store.add store record;
  Mae_db.Store.add store { record with devices = 99 };
  Alcotest.(check int) "one record" 1 (List.length (Mae_db.Store.records store));
  match Mae_db.Store.find store "full_adder" with
  | Some r -> Alcotest.(check int) "latest wins" 99 r.Mae_db.Record.devices
  | None -> Alcotest.fail "record missing"

let test_store_parse_errors () =
  let expect_error text =
    match Mae_db.Store.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error for %S" text
  in
  expect_error "technology foo\n";
  expect_error "record a\nrecord b\n";
  expect_error "record a\ncounts x y z\nend\n";
  expect_error "record a\ngibberish\nend\n";
  expect_error "record a\n" (* unterminated *)

let test_store_file_io () =
  let store = Mae_db.Store.create () in
  Mae_db.Store.add store (record_of_report_exn (report ()));
  let path = Filename.temp_file "mae_db" ".txt" in
  begin
    match Mae_db.Store.save store ~path with
    | Ok () -> ()
    | Error e -> Alcotest.failf "save failed: %s" e
  end;
  begin
    match Mae_db.Store.load ~path with
    | Ok store' ->
        Alcotest.(check (list string)) "round trip via file"
          (Mae_db.Store.names store) (Mae_db.Store.names store')
    | Error e -> Alcotest.failf "load failed: %s" e
  end;
  Sys.remove path;
  match Mae_db.Store.load ~path:"/nonexistent/xyz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected IO error"

(* --- satellite: round-trip fidelity for names the old tokenizer
   corrupted (spaces split one name into many tokens) and for keyword
   collisions ("record", "end") --- *)

let roundtrip_one (record : Mae_db.Record.t) =
  let store = Mae_db.Store.create () in
  Mae_db.Store.add store record;
  match Mae_db.Store.of_string (Mae_db.Store.to_string store) with
  | Error e -> Alcotest.failf "parse failed for %S: %s" record.module_name e
  | Ok store' -> begin
      match Mae_db.Store.records store' with
      | [ r ] ->
          Alcotest.(check bool)
            (Printf.sprintf "round trip of %S/%S" record.module_name
               record.technology)
            true
            (Mae_db.Record.equal record r);
          r
      | rs ->
          Alcotest.failf "expected 1 record for %S, got %d" record.module_name
            (List.length rs)
    end

let test_store_adversarial_names () =
  let base = record_of_report_exn (report ()) in
  let names =
    [
      "two words";
      "record";
      "end";
      "technology nmos";
      "has\"quote";
      "back\\slash";
      "tab\there";
      " leading";
      "trailing ";
      "";
      "\"quoted\"";
    ]
  in
  List.iter
    (fun n ->
      ignore (roundtrip_one { base with module_name = n });
      ignore (roundtrip_one { base with technology = n }))
    names

let test_store_extreme_floats () =
  let base = record_of_report_exn (report ()) in
  let bits = Int64.bits_of_float in
  let extremes =
    [ -0.0; Float.min_float; Float.max_float; 4.9e-324; 1e-300; 3.5 ]
  in
  List.iter
    (fun x ->
      let record =
        {
          base with
          sc_width = x;
          sc_area = x;
          fc_exact_area = x;
          shapes = [ (x, 1.0); (2.0, x) ];
        }
      in
      let r = roundtrip_one record in
      (* Record.equal treats -0.0 = 0.0; the store must be stricter and
         give the bits back untouched *)
      Alcotest.(check int64)
        (Printf.sprintf "sc_width bits of %h" x)
        (bits record.sc_width) (bits r.sc_width);
      Alcotest.(check int64)
        (Printf.sprintf "fc_exact_area bits of %h" x)
        (bits record.fc_exact_area)
        (bits r.fc_exact_area);
      List.iter2
        (fun (w, h) (w', h') ->
          Alcotest.(check int64) "shape width bits" (bits w) (bits w');
          Alcotest.(check int64) "shape height bits" (bits h) (bits h'))
        record.shapes r.shapes)
    extremes

(* --- satellite: non-finite estimates must be a typed refusal, not a
   silent poison pill in the floor-planner feed --- *)

let patch_fullcustom_area value (r : Mae.Driver.module_report) =
  let results =
    List.map
      (fun (mr : Mae.Driver.method_result) ->
        match mr.outcome with
        | Ok (Mae.Methodology.Fullcustom fc) ->
            {
              mr with
              outcome = Ok (Mae.Methodology.Fullcustom { fc with area = value });
            }
        | _ -> mr)
      r.results
  in
  { r with results }

let test_of_report_rejects_non_finite () =
  List.iter
    (fun bad ->
      match Mae_db.Record.of_report (patch_fullcustom_area bad (report ())) with
      | Ok _ -> Alcotest.failf "of_report accepted %h" bad
      | Error (Mae_db.Record.Non_finite { module_name; field; value }) ->
          Alcotest.(check string) "module" "full_adder" module_name;
          Alcotest.(check bool)
            (Printf.sprintf "field %s names a full-custom area" field)
            true
            (String.length field > 0);
          Alcotest.(check bool) "value echoed" true
            (Float.is_nan bad = Float.is_nan value
            && (Float.is_nan bad || bad = value))
      | Error e ->
          Alcotest.failf "wrong error: %s"
            (Mae_db.Record.of_report_error_to_string e))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_record_equal_nan_reflexive () =
  let base = record_of_report_exn (report ()) in
  let r = { base with sc_area = Float.nan; shapes = [ (Float.nan, 1.0) ] } in
  Alcotest.(check bool) "equal r r with nans" true (Mae_db.Record.equal r r);
  Alcotest.(check bool) "nan <> 0" false
    (Mae_db.Record.equal r { r with sc_area = 0.0 })

let test_store_parse_rejects_non_finite () =
  let expect_error text =
    match Mae_db.Store.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parser accepted non-finite in %S" text
  in
  List.iter
    (fun tok ->
      expect_error
        (Printf.sprintf
           "record \"m\"\ntechnology \"t\"\ncounts 1 1 1\nstdcell 0 0 0 %s 1 \
            1 1\nend\n"
           tok);
      expect_error
        (Printf.sprintf
           "record \"m\"\ntechnology \"t\"\ncounts 1 1 1\nshape %s 2\nend\n" tok))
    [ "nan"; "inf"; "infinity"; "-inf" ]

(* --- tentpole: content-addressed estimate store --- *)

let process () = Mae_tech.Registry.find_exn (Mae_tech.Registry.create ()) "nmos25"

let report_bits (r : Mae.Driver.module_report) =
  List.concat_map
    (fun (mr : Mae.Driver.method_result) ->
      let name = Mae.Methodology.name mr.methodology in
      match mr.outcome with
      | Ok o ->
          let d = Mae.Methodology.dims o in
          [
            (name ^ ".area", Int64.bits_of_float d.area);
            (name ^ ".width", Int64.bits_of_float d.width);
            (name ^ ".height", Int64.bits_of_float d.height);
          ]
      | Error e ->
          [ (name ^ ".error:" ^ Mae.Methodology.error_to_string e, 0L) ])
    r.results

let test_cas_hit_returns_same_report () =
  let cas = Mae_db.Cas.create () in
  let r = report () in
  let key = Mae_db.Cas.key ~process:(process ()) S.full_adder in
  Alcotest.(check bool) "cold miss" true
    (Option.is_none
       (Mae_db.Cas.find cas ~key ~circuit:S.full_adder ~process:(process ())));
  Mae_db.Cas.store cas ~key r;
  match Mae_db.Cas.find cas ~key ~circuit:S.full_adder ~process:(process ()) with
  | None -> Alcotest.fail "stored entry not found"
  | Some r' ->
      Alcotest.(check (list (pair string int64)))
        "hit is bit-for-bit" (report_bits r) (report_bits r')

let test_cas_journal_roundtrip () =
  let path = Filename.temp_file "mae_cas" ".journal" in
  let r = report () in
  let key = Mae_db.Cas.key ~process:(process ()) S.full_adder in
  let cas1 = Mae_db.Cas.create () in
  begin
    match Mae_db.Cas.open_journal cas1 ~path with
    | Ok (0, 0) -> ()
    | Ok (l, s) -> Alcotest.failf "fresh journal loaded %d skipped %d" l s
    | Error e -> Alcotest.failf "open_journal: %s" e
  end;
  Mae_db.Cas.store cas1 ~key r;
  Mae_db.Cas.close_journal cas1;
  (* a restarted process replays the journal and answers warm *)
  let cas2 = Mae_db.Cas.create () in
  begin
    match Mae_db.Cas.open_journal cas2 ~path with
    | Ok (1, 0) -> ()
    | Ok (l, s) -> Alcotest.failf "replay loaded %d skipped %d" l s
    | Error e -> Alcotest.failf "replay open_journal: %s" e
  end;
  Alcotest.(check int) "one warm entry" 1 (Mae_db.Cas.warm_pending cas2);
  begin
    match
      Mae_db.Cas.find cas2 ~key ~circuit:S.full_adder ~process:(process ())
    with
    | None -> Alcotest.fail "warm entry not found"
    | Some r' ->
        Alcotest.(check (list (pair string int64)))
          "journal replay is bit-for-bit" (report_bits r) (report_bits r')
  end;
  (* a torn tail (crash mid-append) skips, resyncs, and keeps serving *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "entry deadbeef\nmodule \"torn\"";
  close_out oc;
  let cas3 = Mae_db.Cas.create () in
  begin
    match Mae_db.Cas.open_journal cas3 ~path with
    | Ok (1, 1) -> ()
    | Ok (l, s) ->
        Alcotest.failf "torn tail: loaded %d skipped %d (want 1 1)" l s
    | Error e -> Alcotest.failf "torn-tail open_journal: %s" e
  end;
  Mae_db.Cas.close_journal cas3;
  Sys.remove path

let test_cas_version_bump_invalidates () =
  let cas = Mae_db.Cas.create () in
  let r = report () in
  let p = process () in
  let key = Mae_db.Cas.key ~process:p S.full_adder in
  Mae_db.Cas.store cas ~key r;
  Mae.Methodology.bump_registry_epoch ();
  let key' = Mae_db.Cas.key ~process:p S.full_adder in
  Alcotest.(check bool) "epoch bump changes every key" false
    (String.equal key key');
  Alcotest.(check bool) "old entry never looked up again" true
    (Option.is_none
       (Mae_db.Cas.find cas ~key:key' ~circuit:S.full_adder ~process:p));
  (* the process fingerprint is in the key too *)
  let retuned =
    Mae_tech.Process.make ~name:p.name
      ~lambda_microns:(p.lambda_microns *. 2.)
      ~row_height:p.row_height ~track_pitch:p.track_pitch
      ~feed_through_width:p.feed_through_width ~port_pitch:p.port_pitch
      ~min_spacing:p.min_spacing ~devices:p.devices
  in
  Alcotest.(check bool) "retuned process changes the key" false
    (String.equal key' (Mae_db.Cas.key ~process:retuned S.full_adder));
  (* and so is the method set *)
  Alcotest.(check bool) "method set changes the key" false
    (String.equal key'
       (Mae_db.Cas.key ~methods:[ "stdcell" ] ~process:p S.full_adder))

let test_cas_lru_eviction () =
  let cas = Mae_db.Cas.create ~live_cap:8 () in
  let r = report () in
  let p = process () in
  let before = Mae_db.Cas.eviction_count () in
  let key i = Printf.sprintf "synthetic-%03d" i in
  for i = 1 to 100 do
    Mae_db.Cas.store cas ~key:(key i) r
  done;
  Alcotest.(check int) "live tier stays at the cap" 8 (Mae_db.Cas.length cas);
  Alcotest.(check int) "every eviction counted" 92
    (Mae_db.Cas.eviction_count () - before);
  let find k = Mae_db.Cas.find cas ~key:k ~circuit:S.full_adder ~process:p in
  Alcotest.(check bool) "churned-out key misses" true
    (Option.is_none (find (key 1)));
  Alcotest.(check bool) "recent key still hits" true
    (Option.is_some (find (key 100)));
  (* a hit refreshes recency: touch the oldest survivor, insert one
     more, and the next-oldest is the victim -- not the touched entry *)
  Alcotest.(check bool) "oldest survivor hits" true
    (Option.is_some (find (key 93)));
  Mae_db.Cas.store cas ~key:"one-more" r;
  Alcotest.(check bool) "touched entry protected" true
    (Option.is_some (find (key 93)));
  Alcotest.(check bool) "true LRU evicted instead" true
    (Option.is_none (find (key 94)));
  (* uncapped stores never evict *)
  let uncapped = Mae_db.Cas.create () in
  let base = Mae_db.Cas.eviction_count () in
  for i = 1 to 100 do
    Mae_db.Cas.store uncapped ~key:(key i) r
  done;
  Alcotest.(check int) "uncapped keeps everything" 100
    (Mae_db.Cas.length uncapped);
  Alcotest.(check int) "uncapped never evicts" base
    (Mae_db.Cas.eviction_count ());
  (* a cap below one live entry is a programming error *)
  S.raises_invalid (fun () -> Mae_db.Cas.create ~live_cap:0 ())

let fuzz_props =
  let open QCheck2.Gen in
  let soup =
    map (String.concat "\n")
      (list_size (int_range 0 20)
         (oneofl
            [ "record m"; "end"; "technology t"; "counts 1 2 3";
              "counts x y z"; "shape 1 2"; "shape -"; "stdcell 1 2 3 4 5 6 7";
              "fullcustom 1 2 3 4"; "garbage"; "" ]))
  in
  let base = lazy (record_of_report_exn (report ())) in
  let name_gen =
    (* anything a netlist name could carry: spaces, quotes, backslashes,
       keywords, control characters *)
    let open QCheck2.Gen in
    oneof
      [
        string_size ~gen:printable (int_range 0 12);
        string_size ~gen:(char_range '\000' '\255') (int_range 0 8);
        oneofl [ "record"; "end"; "two words"; "a\"b"; "c\\d"; "" ];
      ]
  in
  let float_gen =
    let open QCheck2.Gen in
    oneof
      [
        float;
        oneofl
          [ 0.0; -0.0; Float.min_float; Float.max_float; 4.9e-324; -1e308 ];
      ]
  in
  [
    Mae_test_support.Support.qtest ~count:300 "store parser total" soup
      (fun text -> match Mae_db.Store.of_string text with Ok _ | Error _ -> true);
    Mae_test_support.Support.qtest ~count:300
      "store round-trips adversarial names and extreme floats"
      QCheck2.Gen.(tup3 name_gen name_gen (list_size (int_range 0 4) float_gen))
      (fun (name, tech, floats) ->
        let record =
          {
            (Lazy.force base) with
            module_name = name;
            technology = tech;
            sc_area =
              (match floats with x :: _ when Float.is_finite x -> x | _ -> 1.0);
            shapes = List.map (fun x -> (Float.abs x, 1.0))
                (List.filter Float.is_finite floats);
          }
        in
        let store = Mae_db.Store.create () in
        Mae_db.Store.add store record;
        match Mae_db.Store.of_string (Mae_db.Store.to_string store) with
        | Error _ -> false
        | Ok store' -> begin
            match Mae_db.Store.records store' with
            | [ r ] -> Mae_db.Record.equal record r
            | _ -> false
          end);
  ]

let () =
  Alcotest.run "db"
    [
      ( "record",
        [
          Alcotest.test_case "of_report" `Quick test_record_of_report;
          Alcotest.test_case "of_report needs default methods" `Quick
            test_record_needs_default_methods;
          Alcotest.test_case "of_report rejects non-finite" `Quick
            test_of_report_rejects_non_finite;
          Alcotest.test_case "equal is nan-reflexive" `Quick
            test_record_equal_nan_reflexive;
        ] );
      ( "store",
        [
          Alcotest.test_case "round trip" `Quick test_store_roundtrip;
          Alcotest.test_case "replace" `Quick test_store_replaces;
          Alcotest.test_case "parse errors" `Quick test_store_parse_errors;
          Alcotest.test_case "file io" `Quick test_store_file_io;
          Alcotest.test_case "adversarial names round trip" `Quick
            test_store_adversarial_names;
          Alcotest.test_case "extreme floats round trip bit-for-bit" `Quick
            test_store_extreme_floats;
          Alcotest.test_case "parser rejects non-finite text" `Quick
            test_store_parse_rejects_non_finite;
        ] );
      ( "cas",
        [
          Alcotest.test_case "hit returns the stored report" `Quick
            test_cas_hit_returns_same_report;
          Alcotest.test_case "journal warm round trip" `Quick
            test_cas_journal_roundtrip;
          Alcotest.test_case "version bump invalidates" `Quick
            test_cas_version_bump_invalidates;
          Alcotest.test_case "lru cap churn" `Quick test_cas_lru_eviction;
        ] );
      ("fuzz", fuzz_props);
    ]
