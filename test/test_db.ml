module S = Mae_test_support.Support

let report () =
  let registry = Mae_tech.Registry.create () in
  match Mae.Driver.run_circuit ~registry S.full_adder with
  | Ok r -> r
  | Error _ -> Alcotest.fail "driver failed"

let record_of_report_exn r =
  match Mae_db.Record.of_report r with
  | Ok record -> record
  | Error msg -> Alcotest.failf "of_report: %s" msg

let test_record_of_report () =
  let r = report () in
  let record = record_of_report_exn r in
  Alcotest.(check string) "name" "full_adder" record.Mae_db.Record.module_name;
  Alcotest.(check string) "technology" "nmos25" record.technology;
  Alcotest.(check int) "devices" 5 record.devices;
  Alcotest.(check int) "nets" 8 record.nets;
  Alcotest.(check int) "ports" 5 record.ports;
  let sc = Option.get (Mae.Driver.stdcell r) in
  let fce = Option.get (Mae.Driver.fullcustom_exact r) in
  S.check_float "sc area" sc.Mae.Estimate.area record.sc_area;
  S.check_float "fc exact area" fce.Mae.Estimate.area record.fc_exact_area;
  (* shapes: one per sweep entry plus the two full-custom variants *)
  Alcotest.(check int) "shape count"
    (List.length (Mae.Driver.stdcell_sweep r) + 2)
    (List.length record.shapes)

(* a narrowed method set cannot feed the floor planner: typed refusal,
   not a crash *)
let test_record_needs_default_methods () =
  let registry = Mae_tech.Registry.create () in
  match
    Mae.Driver.run_circuit ~registry ~methods:[ "fullcustom-exact" ]
      S.full_adder
  with
  | Error _ -> Alcotest.fail "driver failed"
  | Ok r ->
      Alcotest.(check bool) "of_report refuses" true
        (Result.is_error (Mae_db.Record.of_report r))

let test_store_roundtrip () =
  let store = Mae_db.Store.create () in
  Mae_db.Store.add store (record_of_report_exn (report ()));
  let registry = Mae_tech.Registry.create () in
  begin
    match Mae.Driver.run_circuit ~registry S.counter8 with
    | Ok r -> Mae_db.Store.add store (record_of_report_exn r)
    | Error _ -> Alcotest.fail "driver failed"
  end;
  let text = Mae_db.Store.to_string store in
  match Mae_db.Store.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok store' ->
      Alcotest.(check (list string)) "names preserved"
        (Mae_db.Store.names store) (Mae_db.Store.names store');
      List.iter2
        (fun (a : Mae_db.Record.t) b ->
          Alcotest.(check bool) ("record " ^ a.module_name) true
            (Mae_db.Record.equal a b))
        (Mae_db.Store.records store)
        (Mae_db.Store.records store')

let test_store_replaces () =
  let store = Mae_db.Store.create () in
  let record = record_of_report_exn (report ()) in
  Mae_db.Store.add store record;
  Mae_db.Store.add store { record with devices = 99 };
  Alcotest.(check int) "one record" 1 (List.length (Mae_db.Store.records store));
  match Mae_db.Store.find store "full_adder" with
  | Some r -> Alcotest.(check int) "latest wins" 99 r.Mae_db.Record.devices
  | None -> Alcotest.fail "record missing"

let test_store_parse_errors () =
  let expect_error text =
    match Mae_db.Store.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error for %S" text
  in
  expect_error "technology foo\n";
  expect_error "record a\nrecord b\n";
  expect_error "record a\ncounts x y z\nend\n";
  expect_error "record a\ngibberish\nend\n";
  expect_error "record a\n" (* unterminated *)

let test_store_file_io () =
  let store = Mae_db.Store.create () in
  Mae_db.Store.add store (record_of_report_exn (report ()));
  let path = Filename.temp_file "mae_db" ".txt" in
  begin
    match Mae_db.Store.save store ~path with
    | Ok () -> ()
    | Error e -> Alcotest.failf "save failed: %s" e
  end;
  begin
    match Mae_db.Store.load ~path with
    | Ok store' ->
        Alcotest.(check (list string)) "round trip via file"
          (Mae_db.Store.names store) (Mae_db.Store.names store')
    | Error e -> Alcotest.failf "load failed: %s" e
  end;
  Sys.remove path;
  match Mae_db.Store.load ~path:"/nonexistent/xyz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected IO error"

let fuzz_props =
  let open QCheck2.Gen in
  let soup =
    map (String.concat "\n")
      (list_size (int_range 0 20)
         (oneofl
            [ "record m"; "end"; "technology t"; "counts 1 2 3";
              "counts x y z"; "shape 1 2"; "shape -"; "stdcell 1 2 3 4 5 6 7";
              "fullcustom 1 2 3 4"; "garbage"; "" ]))
  in
  [
    Mae_test_support.Support.qtest ~count:300 "store parser total" soup
      (fun text -> match Mae_db.Store.of_string text with Ok _ | Error _ -> true);
  ]

let () =
  Alcotest.run "db"
    [
      ( "record",
        [
          Alcotest.test_case "of_report" `Quick test_record_of_report;
          Alcotest.test_case "of_report needs default methods" `Quick
            test_record_needs_default_methods;
        ] );
      ( "store",
        [
          Alcotest.test_case "round trip" `Quick test_store_roundtrip;
          Alcotest.test_case "replace" `Quick test_store_replaces;
          Alcotest.test_case "parse errors" `Quick test_store_parse_errors;
          Alcotest.test_case "file io" `Quick test_store_file_io;
        ] );
      ("fuzz", fuzz_props);
    ]
