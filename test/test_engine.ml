(* The batch engine: input-order results, bit-for-bit determinism across
   domain counts, and per-module error isolation. *)

module S = Mae_test_support.Support

let registry = Mae_tech.Registry.create ()

(* 50 random gate-level circuits, fixed seeds: the determinism workload. *)
let random_batch ?(first_seed = 1000) n =
  List.init n (fun i ->
      Mae_workload.Random_circuit.generate
        ~name:(Printf.sprintf "rnd%02d" i)
        ~rng:(Mae_prob.Rng.create ~seed:(first_seed + i))
        {
          Mae_workload.Random_circuit.default_params with
          devices = 20 + (i mod 7) * 10;
        })

(* Every float of a report, as raw IEEE-754 bits: "equal digests" means
   bit-for-bit identical estimates, not merely close ones. *)
let bits = Int64.bits_of_float
let aspect_bits a = bits (Mae_geom.Aspect.ratio a)

let stdcell_digest (e : Mae.Estimate.stdcell) =
  [
    Int64.of_int e.rows;
    Int64.of_int e.tracks;
    Int64.of_int e.feed_throughs;
    bits e.height;
    bits e.width;
    bits e.area;
    aspect_bits e.aspect;
    aspect_bits e.aspect_raw;
  ]

let fullcustom_digest (e : Mae.Estimate.fullcustom) =
  [
    bits e.device_area;
    bits e.wire_area;
    bits e.area;
    bits e.width;
    bits e.height;
    aspect_bits e.aspect;
    aspect_bits e.aspect_raw;
  ]

(* every selected method contributes: its full payload digest for the
   structured outcomes, the shared dims for the scalar baselines *)
let outcome_digest (mr : Mae.Driver.method_result) =
  let name = Mae.Methodology.name mr.methodology in
  match mr.outcome with
  | Ok (Mae.Methodology.Stdcell { auto; sweep }) ->
      stdcell_digest auto @ List.concat_map stdcell_digest sweep
  | Ok (Mae.Methodology.Fullcustom fc) -> fullcustom_digest fc
  | Ok outcome ->
      let d = Mae.Methodology.dims outcome in
      [ bits d.area; bits d.width; bits d.height ]
  | Error e ->
      [ Int64.of_int (Hashtbl.hash (name, Mae.Methodology.error_to_string e)) ]

let result_digest = function
  | Ok (r : Mae.Driver.module_report) ->
      ( "ok:" ^ r.circuit.Mae_netlist.Circuit.name,
        List.concat_map outcome_digest r.results )
  | Error e -> (Format.asprintf "error: %a" Mae_engine.pp_error e, [])

let digests = Alcotest.(list (pair string (list int64)))

let test_determinism () =
  let batch = random_batch 50 in
  let seq = Mae_engine.run_circuits ~jobs:1 ~registry batch in
  let par = Mae_engine.run_circuits ~jobs:8 ~registry batch in
  Alcotest.check digests "jobs:1 = jobs:8, bit for bit"
    (List.map result_digest seq)
    (List.map result_digest par)

let test_order_preserved () =
  let batch = random_batch 12 in
  let results = Mae_engine.run_circuits ~jobs:4 ~registry batch in
  let names =
    List.map
      (function
        | Ok (r : Mae.Driver.module_report) ->
            r.circuit.Mae_netlist.Circuit.name
        | Error _ -> "<error>")
      results
  in
  Alcotest.(check (list string))
    "slot i holds module i"
    (List.map (fun (c : Mae_netlist.Circuit.t) -> c.name) batch)
    names

let test_error_isolation () =
  let bad =
    Mae_workload.Random_circuit.generate ~name:"bad"
      ~rng:(Mae_prob.Rng.create ~seed:7)
      {
        Mae_workload.Random_circuit.default_params with
        devices = 20;
        technology = "unobtanium";
      }
  in
  let good = random_batch 5 in
  let batch =
    match good with
    | g0 :: g1 :: rest -> g0 :: g1 :: bad :: rest
    | _ -> assert false
  in
  let results = Mae_engine.run_circuits ~jobs:4 ~registry batch in
  Alcotest.(check int) "one slot per module" 6 (List.length results);
  List.iteri
    (fun i result ->
      match (i, result) with
      | 2, Error (Mae_engine.Driver_error (Mae.Driver.Unknown_process p)) ->
          Alcotest.(check string) "failing module named" "bad" p.module_name
      | 2, _ -> Alcotest.fail "slot 2 should be Unknown_process"
      | _, Ok _ -> ()
      | i, Error e ->
          Alcotest.failf "slot %d unexpectedly failed: %a" i
            Mae_engine.pp_error e)
    results

let test_jobs_validation () =
  S.raises_invalid (fun () ->
      Mae_engine.run_circuits ~jobs:(-1) ~registry (random_batch 1));
  (* jobs:0 = one domain per core; must work on any host *)
  let auto = Mae_engine.run_circuits ~jobs:0 ~registry (random_batch 3) in
  Alcotest.(check int) "jobs:0 runs the batch" 3 (List.length auto);
  Alcotest.(check int)
    "empty batch" 0
    (List.length (Mae_engine.run_circuits ~jobs:4 ~registry []))

(* The persistent pool must be invisible in results: same bits as
   spawning fresh domains, across reuse, changing jobs counts (capped at
   the pool's width rather than erroring) and changing batch sizes. *)
let test_pool_reuse_deterministic () =
  let pool = Mae_engine.Pool.create ~domains:3 in
  Alcotest.(check int)
    "concurrency = domains + caller" 4
    (Mae_engine.Pool.concurrency pool);
  let batch = random_batch 17 in
  let seq = Mae_engine.run_circuits ~jobs:1 ~registry batch in
  List.iter
    (fun jobs ->
      let pooled = Mae_engine.run_circuits ~jobs ~pool ~registry batch in
      Alcotest.check digests
        (Printf.sprintf "pooled jobs:%d = jobs:1" jobs)
        (List.map result_digest seq)
        (List.map result_digest pooled))
    [ 2; 4; 8; 3; 4 ];
  let small = random_batch ~first_seed:2000 3 in
  let small_seq = Mae_engine.run_circuits ~jobs:1 ~registry small in
  let small_pooled = Mae_engine.run_circuits ~jobs:4 ~pool ~registry small in
  Alcotest.check digests "pool survives batch-size changes"
    (List.map result_digest small_seq)
    (List.map result_digest small_pooled);
  Mae_engine.Pool.shutdown pool;
  Mae_engine.Pool.shutdown pool (* idempotent *);
  (* a shut-down pool contributes no workers: the batch degrades to the
     calling domain, with identical bits *)
  let after = Mae_engine.run_circuits ~jobs:4 ~pool ~registry small in
  Alcotest.check digests "shut-down pool degrades to sequential"
    (List.map result_digest small_seq)
    (List.map result_digest after)

let test_stats () =
  let batch = random_batch 8 in
  Mae_prob.Kernel_cache.clear ();
  let results, stats =
    Mae_engine.run_circuits_with_stats ~jobs:2 ~registry batch
  in
  Alcotest.(check int) "modules" 8 stats.Mae_engine.modules;
  Alcotest.(check int)
    "ok + failed = modules" stats.Mae_engine.modules
    (stats.Mae_engine.ok + stats.Mae_engine.failed);
  Alcotest.(check int)
    "ok counts the Ok slots" stats.Mae_engine.ok
    (List.length (List.filter Result.is_ok results));
  Alcotest.(check int) "jobs as requested" 2 stats.Mae_engine.jobs;
  Alcotest.(check bool) "elapsed >= 0" true (stats.Mae_engine.elapsed_s >= 0.);
  Alcotest.(check bool)
    "repeated kernels hit the cache" true
    (stats.Mae_engine.cache_hits > 0)

(* --- the content-addressed estimate store through the engine --- *)

let test_estimate_store_hits () =
  let batch = random_batch ~first_seed:3000 6 in
  let cache = Mae_db.Cas.create () in
  let cold, cold_stats =
    Mae_engine.run_circuits_with_stats ~jobs:1 ~cache ~registry batch
  in
  Alcotest.(check int) "cold run misses every module" 6
    cold_stats.Mae_engine.store_misses;
  Alcotest.(check int) "cold run has no hits" 0
    cold_stats.Mae_engine.store_hits;
  let warm, warm_stats =
    Mae_engine.run_circuits_with_stats ~jobs:1 ~cache ~registry batch
  in
  Alcotest.(check int) "warm run hits every module" 6
    warm_stats.Mae_engine.store_hits;
  Alcotest.(check int) "warm run misses nothing" 0
    warm_stats.Mae_engine.store_misses;
  Alcotest.check digests "warm answers are bit-for-bit the cold ones"
    (List.map result_digest cold)
    (List.map result_digest warm);
  (* an explicit config changes results, so it must bypass the store *)
  let config = { Mae.Config.default with two_component_free = false } in
  let _, bypass =
    Mae_engine.run_circuits_with_stats ~jobs:1 ~cache ~config ~registry batch
  in
  Alcotest.(check int) "config bypasses the store" 0
    (bypass.Mae_engine.store_hits + bypass.Mae_engine.store_misses)

(* --- incremental re-estimation: the delta path must be bit-for-bit the
   full recomputation --- *)

let previous_of circuit =
  match Mae.Driver.run_circuit ~registry circuit with
  | Ok r -> r
  | Error e -> Alcotest.failf "driver: %a" (fun ppf -> Mae.Driver.pp_error ppf) e

let check_reestimate ?(expect_incremental = true) name circuit edit =
  let previous = previous_of circuit in
  match Mae_engine.reestimate ~registry ~previous edit with
  | Error e -> Alcotest.failf "%s: reestimate: %a" name Mae_engine.pp_error e
  | Ok rr ->
      let edited =
        match Mae_engine.apply_edit circuit edit with
        | Ok c -> c
        | Error msg -> Alcotest.failf "%s: apply_edit: %s" name msg
      in
      let full = previous_of edited in
      Alcotest.check digests
        (name ^ ": delta = full recomputation, bit for bit")
        [ result_digest (Ok full) ]
        [ result_digest (Ok rr.Mae_engine.report) ];
      Alcotest.(check bool)
        (name ^ ": stats updated incrementally")
        expect_incremental rr.Mae_engine.stats_incremental;
      Alcotest.(check bool)
        (name ^ ": incremental stats match a fresh compute")
        true
        (Mae_netlist.Stats.equal rr.Mae_engine.stats
           (Mae_netlist.Stats.compute edited full.Mae.Driver.process));
      rr

let test_reestimate_add_device () =
  List.iter
    (fun circuit ->
      List.iter
        (fun (name, edit) -> ignore (check_reestimate name circuit edit))
        [
          ( "add_device new net",
            Mae_engine.Add_device
              { name = "zz_new"; kind = "inv"; nets = [ "zz_net" ] } );
          ( "add_device existing nets",
            Mae_engine.Add_device
              {
                name = "zz_tap";
                kind = "nand2";
                nets =
                  [
                    circuit.Mae_netlist.Circuit.nets.(0).Mae_netlist.Net.name;
                    circuit.Mae_netlist.Circuit.nets.(1).Mae_netlist.Net.name;
                    circuit.Mae_netlist.Circuit.nets.(0).Mae_netlist.Net.name;
                  ];
              } );
        ])
    (random_batch ~first_seed:4000 3)

let test_reestimate_nets_and_removal () =
  let circuit = List.hd (random_batch ~first_seed:4100 1) in
  let rr =
    check_reestimate "add floating net" circuit
      (Mae_engine.Add_net { name = "zz_float" })
  in
  (* adding a floating net changes no estimator input except the net
     count: the structured methodologies are all reused *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "add_net reuses %s" m)
        true
        (List.mem m rr.Mae_engine.reused))
    [ "stdcell"; "fullcustom-exact"; "fullcustom-average" ];
  (* removing it again: first apply the add, then re-estimate the remove *)
  let grown =
    match
      Mae_engine.apply_edit circuit (Mae_engine.Add_net { name = "zz_float" })
    with
    | Ok c -> c
    | Error msg -> Alcotest.failf "grow: %s" msg
  in
  ignore
    (check_reestimate "remove floating net" grown
       (Mae_engine.Remove_net { name = "zz_float" }));
  (* device removal breaks fold associativity: full stats recompute,
     same bit-for-bit contract *)
  let victim = circuit.Mae_netlist.Circuit.devices.(2).Mae_netlist.Device.name in
  ignore
    (check_reestimate ~expect_incremental:false "remove device" circuit
       (Mae_engine.Remove_device { name = victim }))

let test_reestimate_chained_stats () =
  (* ?previous_stats makes chaining O(edit): feed each report's stats
     into the next call and stay bit-for-bit *)
  let circuit = List.hd (random_batch ~first_seed:4200 1) in
  let previous = previous_of circuit in
  let e1 = Mae_engine.Add_net { name = "chain_a" } in
  let rr1 =
    match Mae_engine.reestimate ~registry ~previous e1 with
    | Ok rr -> rr
    | Error e -> Alcotest.failf "chain 1: %a" Mae_engine.pp_error e
  in
  let e2 =
    Mae_engine.Add_device
      { name = "chain_dev"; kind = "inv"; nets = [ "chain_a" ] }
  in
  let rr2 =
    match
      Mae_engine.reestimate ~registry ~previous:rr1.Mae_engine.report
        ~previous_stats:rr1.Mae_engine.stats e2
    with
    | Ok rr -> rr
    | Error e -> Alcotest.failf "chain 2: %a" Mae_engine.pp_error e
  in
  let full =
    let c1 = Result.get_ok (Mae_engine.apply_edit circuit e1) in
    previous_of (Result.get_ok (Mae_engine.apply_edit c1 e2))
  in
  Alcotest.check digests "chained deltas = full, bit for bit"
    [ result_digest (Ok full) ]
    [ result_digest (Ok rr2.Mae_engine.report) ]

let test_apply_edit_errors () =
  let circuit = S.tiny () in
  let expect_err name edit =
    match Mae_engine.apply_edit circuit edit with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected apply_edit to refuse" name
  in
  expect_err "duplicate device"
    (Mae_engine.Add_device { name = "i1"; kind = "inv"; nets = [ "a" ] });
  expect_err "no pins" (Mae_engine.Add_device { name = "x"; kind = "inv"; nets = [] });
  expect_err "missing device" (Mae_engine.Remove_device { name = "ghost" });
  expect_err "existing net" (Mae_engine.Add_net { name = "m" });
  expect_err "missing net" (Mae_engine.Remove_net { name = "ghost" });
  expect_err "connected net" (Mae_engine.Remove_net { name = "m" });
  (* net "a" has degree 1 via i1 and is port-bound: both refusals *)
  expect_err "port-bound net" (Mae_engine.Remove_net { name = "a" });
  (* and reestimate surfaces the refusal as a typed error *)
  let previous = previous_of circuit in
  match
    Mae_engine.reestimate ~registry ~previous
      (Mae_engine.Remove_device { name = "ghost" })
  with
  | Error (Mae_engine.Invalid_edit { module_name; _ }) ->
      Alcotest.(check string) "typed error names the module" "tiny" module_name
  | Error e -> Alcotest.failf "wrong error: %a" Mae_engine.pp_error e
  | Ok _ -> Alcotest.fail "expected Invalid_edit"

let test_stats_delta_equals_compute () =
  let process = Mae_tech.Registry.find_exn registry "nmos25" in
  List.iter
    (fun circuit ->
      let stats = Mae_netlist.Stats.compute circuit process in
      let edit =
        Mae_engine.Add_device { name = "zz"; kind = "inv"; nets = [ "zz_n" ] }
      in
      let grown = Result.get_ok (Mae_engine.apply_edit circuit edit) in
      let kind = Option.get (Mae_tech.Process.find_device process "inv") in
      let delta =
        Mae_netlist.Stats.add_device_delta stats ~kind
          ~net_count:(Mae_netlist.Circuit.net_count grown)
          ~net_transitions:[ (0, 1) ]
      in
      Alcotest.(check bool) "delta = compute, bitwise" true
        (Mae_netlist.Stats.equal delta
           (Mae_netlist.Stats.compute grown process)))
    (random_batch ~first_seed:4300 4)

let () =
  Alcotest.run "engine"
    [
      ( "batch",
        [
          Alcotest.test_case "determinism jobs:1 = jobs:8" `Slow
            test_determinism;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "error isolation" `Quick test_error_isolation;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
          Alcotest.test_case "pool reuse is deterministic" `Slow
            test_pool_reuse_deterministic;
          Alcotest.test_case "batch stats" `Quick test_stats;
        ] );
      ( "store",
        [
          Alcotest.test_case "repeat batch answers from the store" `Quick
            test_estimate_store_hits;
        ] );
      ( "reestimate",
        [
          Alcotest.test_case "add_device delta = full" `Quick
            test_reestimate_add_device;
          Alcotest.test_case "net edits and removal delta = full" `Quick
            test_reestimate_nets_and_removal;
          Alcotest.test_case "chained previous_stats stays exact" `Quick
            test_reestimate_chained_stats;
          Alcotest.test_case "edit validation" `Quick test_apply_edit_errors;
          Alcotest.test_case "stats delta = compute" `Quick
            test_stats_delta_equals_compute;
        ] );
    ]
