(* The batch engine: input-order results, bit-for-bit determinism across
   domain counts, and per-module error isolation. *)

module S = Mae_test_support.Support

let registry = Mae_tech.Registry.create ()

(* 50 random gate-level circuits, fixed seeds: the determinism workload. *)
let random_batch ?(first_seed = 1000) n =
  List.init n (fun i ->
      Mae_workload.Random_circuit.generate
        ~name:(Printf.sprintf "rnd%02d" i)
        ~rng:(Mae_prob.Rng.create ~seed:(first_seed + i))
        {
          Mae_workload.Random_circuit.default_params with
          devices = 20 + (i mod 7) * 10;
        })

(* Every float of a report, as raw IEEE-754 bits: "equal digests" means
   bit-for-bit identical estimates, not merely close ones. *)
let bits = Int64.bits_of_float
let aspect_bits a = bits (Mae_geom.Aspect.ratio a)

let stdcell_digest (e : Mae.Estimate.stdcell) =
  [
    Int64.of_int e.rows;
    Int64.of_int e.tracks;
    Int64.of_int e.feed_throughs;
    bits e.height;
    bits e.width;
    bits e.area;
    aspect_bits e.aspect;
    aspect_bits e.aspect_raw;
  ]

let fullcustom_digest (e : Mae.Estimate.fullcustom) =
  [
    bits e.device_area;
    bits e.wire_area;
    bits e.area;
    bits e.width;
    bits e.height;
    aspect_bits e.aspect;
    aspect_bits e.aspect_raw;
  ]

(* every selected method contributes: its full payload digest for the
   structured outcomes, the shared dims for the scalar baselines *)
let outcome_digest (mr : Mae.Driver.method_result) =
  let name = Mae.Methodology.name mr.methodology in
  match mr.outcome with
  | Ok (Mae.Methodology.Stdcell { auto; sweep }) ->
      stdcell_digest auto @ List.concat_map stdcell_digest sweep
  | Ok (Mae.Methodology.Fullcustom fc) -> fullcustom_digest fc
  | Ok outcome ->
      let d = Mae.Methodology.dims outcome in
      [ bits d.area; bits d.width; bits d.height ]
  | Error e ->
      [ Int64.of_int (Hashtbl.hash (name, Mae.Methodology.error_to_string e)) ]

let result_digest = function
  | Ok (r : Mae.Driver.module_report) ->
      ( "ok:" ^ r.circuit.Mae_netlist.Circuit.name,
        List.concat_map outcome_digest r.results )
  | Error e -> (Format.asprintf "error: %a" Mae_engine.pp_error e, [])

let digests = Alcotest.(list (pair string (list int64)))

let test_determinism () =
  let batch = random_batch 50 in
  let seq = Mae_engine.run_circuits ~jobs:1 ~registry batch in
  let par = Mae_engine.run_circuits ~jobs:8 ~registry batch in
  Alcotest.check digests "jobs:1 = jobs:8, bit for bit"
    (List.map result_digest seq)
    (List.map result_digest par)

let test_order_preserved () =
  let batch = random_batch 12 in
  let results = Mae_engine.run_circuits ~jobs:4 ~registry batch in
  let names =
    List.map
      (function
        | Ok (r : Mae.Driver.module_report) ->
            r.circuit.Mae_netlist.Circuit.name
        | Error _ -> "<error>")
      results
  in
  Alcotest.(check (list string))
    "slot i holds module i"
    (List.map (fun (c : Mae_netlist.Circuit.t) -> c.name) batch)
    names

let test_error_isolation () =
  let bad =
    Mae_workload.Random_circuit.generate ~name:"bad"
      ~rng:(Mae_prob.Rng.create ~seed:7)
      {
        Mae_workload.Random_circuit.default_params with
        devices = 20;
        technology = "unobtanium";
      }
  in
  let good = random_batch 5 in
  let batch =
    match good with
    | g0 :: g1 :: rest -> g0 :: g1 :: bad :: rest
    | _ -> assert false
  in
  let results = Mae_engine.run_circuits ~jobs:4 ~registry batch in
  Alcotest.(check int) "one slot per module" 6 (List.length results);
  List.iteri
    (fun i result ->
      match (i, result) with
      | 2, Error (Mae_engine.Driver_error (Mae.Driver.Unknown_process p)) ->
          Alcotest.(check string) "failing module named" "bad" p.module_name
      | 2, _ -> Alcotest.fail "slot 2 should be Unknown_process"
      | _, Ok _ -> ()
      | i, Error e ->
          Alcotest.failf "slot %d unexpectedly failed: %a" i
            Mae_engine.pp_error e)
    results

let test_jobs_validation () =
  S.raises_invalid (fun () ->
      Mae_engine.run_circuits ~jobs:(-1) ~registry (random_batch 1));
  (* jobs:0 = one domain per core; must work on any host *)
  let auto = Mae_engine.run_circuits ~jobs:0 ~registry (random_batch 3) in
  Alcotest.(check int) "jobs:0 runs the batch" 3 (List.length auto);
  Alcotest.(check int)
    "empty batch" 0
    (List.length (Mae_engine.run_circuits ~jobs:4 ~registry []))

(* The persistent pool must be invisible in results: same bits as
   spawning fresh domains, across reuse, changing jobs counts (capped at
   the pool's width rather than erroring) and changing batch sizes. *)
let test_pool_reuse_deterministic () =
  let pool = Mae_engine.Pool.create ~domains:3 in
  Alcotest.(check int)
    "concurrency = domains + caller" 4
    (Mae_engine.Pool.concurrency pool);
  let batch = random_batch 17 in
  let seq = Mae_engine.run_circuits ~jobs:1 ~registry batch in
  List.iter
    (fun jobs ->
      let pooled = Mae_engine.run_circuits ~jobs ~pool ~registry batch in
      Alcotest.check digests
        (Printf.sprintf "pooled jobs:%d = jobs:1" jobs)
        (List.map result_digest seq)
        (List.map result_digest pooled))
    [ 2; 4; 8; 3; 4 ];
  let small = random_batch ~first_seed:2000 3 in
  let small_seq = Mae_engine.run_circuits ~jobs:1 ~registry small in
  let small_pooled = Mae_engine.run_circuits ~jobs:4 ~pool ~registry small in
  Alcotest.check digests "pool survives batch-size changes"
    (List.map result_digest small_seq)
    (List.map result_digest small_pooled);
  Mae_engine.Pool.shutdown pool;
  Mae_engine.Pool.shutdown pool (* idempotent *);
  (* a shut-down pool contributes no workers: the batch degrades to the
     calling domain, with identical bits *)
  let after = Mae_engine.run_circuits ~jobs:4 ~pool ~registry small in
  Alcotest.check digests "shut-down pool degrades to sequential"
    (List.map result_digest small_seq)
    (List.map result_digest after)

let test_stats () =
  let batch = random_batch 8 in
  Mae_prob.Kernel_cache.clear ();
  let results, stats =
    Mae_engine.run_circuits_with_stats ~jobs:2 ~registry batch
  in
  Alcotest.(check int) "modules" 8 stats.Mae_engine.modules;
  Alcotest.(check int)
    "ok + failed = modules" stats.Mae_engine.modules
    (stats.Mae_engine.ok + stats.Mae_engine.failed);
  Alcotest.(check int)
    "ok counts the Ok slots" stats.Mae_engine.ok
    (List.length (List.filter Result.is_ok results));
  Alcotest.(check int) "jobs as requested" 2 stats.Mae_engine.jobs;
  Alcotest.(check bool) "elapsed >= 0" true (stats.Mae_engine.elapsed_s >= 0.);
  Alcotest.(check bool)
    "repeated kernels hit the cache" true
    (stats.Mae_engine.cache_hits > 0)

let () =
  Alcotest.run "engine"
    [
      ( "batch",
        [
          Alcotest.test_case "determinism jobs:1 = jobs:8" `Slow
            test_determinism;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "error isolation" `Quick test_error_isolation;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
          Alcotest.test_case "pool reuse is deterministic" `Slow
            test_pool_reuse_deterministic;
          Alcotest.test_case "batch stats" `Quick test_stats;
        ] );
    ]
