open Mae_floorplan
module S = Mae_test_support.Support

(* Shape *)

let test_shape_prunes_dominated () =
  let s = Shape.of_list [ (10., 10.); (12., 10.); (8., 15.); (20., 5.) ] in
  (* (12,10) dominated by (10,10) *)
  Alcotest.(check bool) "pruned" true
    (Shape.options s = [ (8., 15.); (10., 10.); (20., 5.) ])

let test_shape_validation () =
  S.raises_invalid (fun () -> ignore (Shape.of_list []));
  S.raises_invalid (fun () -> ignore (Shape.of_list [ (0., 5.) ]))

let test_shape_square () =
  let s = Shape.square ~area:100. in
  Alcotest.(check bool) "10x10" true (Shape.options s = [ (10., 10.) ]);
  S.check_float "min area" 100. (Shape.min_area s)

let test_shape_rotations () =
  let s = Shape.with_rotations (Shape.singleton ~w:4. ~h:9.) in
  Alcotest.(check bool) "both orientations" true
    (Shape.options s = [ (4., 9.); (9., 4.) ]);
  (* rotating a square adds nothing *)
  Alcotest.(check int) "square unchanged" 1
    (Shape.size (Shape.with_rotations (Shape.square ~area:25.)))

let test_shape_combines () =
  let a = Shape.singleton ~w:4. ~h:6. and b = Shape.singleton ~w:3. ~h:2. in
  Alcotest.(check bool) "vertical stack" true
    (Shape.options (Shape.combine_vertical a b) = [ (4., 8.) ]);
  Alcotest.(check bool) "horizontal" true
    (Shape.options (Shape.combine_horizontal a b) = [ (7., 6.) ])

let test_best_option () =
  let s = Shape.of_list [ (2., 30.); (10., 5.); (30., 2.1) ] in
  let w, h = Shape.best_option s in
  S.check_float "min area picked" 50. (w *. h)

(* Polish *)

let polish_valid t =
  match Polish.of_elements (Polish.elements t) with
  | Ok _ -> true
  | Error _ -> false

let test_polish_initial () =
  for n = 1 to 12 do
    let t = Polish.initial n in
    Alcotest.(check int) "operands" n (Polish.operand_count t);
    Alcotest.(check bool) "valid" true (polish_valid t)
  done;
  S.raises_invalid (fun () -> ignore (Polish.initial 0))

let test_polish_of_elements_rejects () =
  let bad arr =
    match Polish.of_elements arr with
    | Ok _ -> Alcotest.fail "expected rejection"
    | Error _ -> ()
  in
  bad [| Polish.Vertical_cut |];
  bad [| Polish.Operand 0; Polish.Operand 1 |];
  bad [| Polish.Operand 0; Polish.Operand 0; Polish.Vertical_cut |];
  bad [| Polish.Operand 0; Polish.Vertical_cut |];
  bad [| Polish.Operand 0; Polish.Operand 2; Polish.Vertical_cut |]

let test_polish_moves_preserve_validity () =
  let rng = S.rng 31 in
  let t = ref (Polish.initial 8) in
  for _ = 1 to 500 do
    t := Polish.random_move rng !t;
    if not (polish_valid !t) then Alcotest.fail "move broke validity"
  done

let test_polish_single_module () =
  let t = Polish.initial 1 in
  let t' = Polish.random_move (S.rng 1) t in
  Alcotest.(check int) "still one operand" 1 (Polish.operand_count t')

(* Slicing *)

let test_slicing_two_modules () =
  (* 0 1 + stacks them; 0 1 * places side by side *)
  let shapes = [| Shape.singleton ~w:4. ~h:2.; Shape.singleton ~w:3. ~h:5. |] in
  let stack =
    Result.get_ok
      (Polish.of_elements [| Polish.Operand 0; Polish.Operand 1; Polish.Horizontal_cut |])
  in
  let beside =
    Result.get_ok
      (Polish.of_elements [| Polish.Operand 0; Polish.Operand 1; Polish.Vertical_cut |])
  in
  let e1 = Slicing.eval stack shapes in
  S.check_float "stack w" 4. e1.Slicing.width;
  S.check_float "stack h" 7. e1.Slicing.height;
  let e2 = Slicing.eval beside shapes in
  S.check_float "beside w" 7. e2.Slicing.width;
  S.check_float "beside h" 5. e2.Slicing.height

let test_slicing_picks_min_area_option () =
  (* with rotations available the evaluator picks the better one *)
  let shapes =
    [| Shape.with_rotations (Shape.singleton ~w:10. ~h:2.);
       Shape.with_rotations (Shape.singleton ~w:10. ~h:2.) |]
  in
  let stack =
    Result.get_ok
      (Polish.of_elements [| Polish.Operand 0; Polish.Operand 1; Polish.Horizontal_cut |])
  in
  let e = Slicing.eval stack shapes in
  (* stacking two 10x2 gives 10x4 = 40; stacking rotated 2x10 gives 2x20 = 40;
     either way the minimum is 40 *)
  S.check_float "area" 40. e.Slicing.area

let test_slicing_shape_count_mismatch () =
  S.raises_invalid (fun () ->
      ignore (Slicing.eval (Polish.initial 3) [| Shape.square ~area:1. |]))

let rects_disjoint rects =
  let n = Array.length rects in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Mae_geom.Rect.intersects rects.(i) rects.(j) then ok := false
    done
  done;
  !ok

let test_place_no_overlap_within_chip () =
  let rng = S.rng 77 in
  for n = 1 to 10 do
    let shapes =
      Array.init n (fun _ ->
          Shape.with_rotations
            (Shape.singleton
               ~w:(1. +. Mae_prob.Rng.float rng 20.)
               ~h:(1. +. Mae_prob.Rng.float rng 20.)))
    in
    let expr = ref (Polish.initial n) in
    for _ = 1 to 50 do expr := Polish.random_move rng !expr done;
    let placement = Slicing.place !expr shapes in
    Alcotest.(check bool) "disjoint" true (rects_disjoint placement.Slicing.rects);
    let chip =
      Mae_geom.Rect.make ~x:0. ~y:0. ~w:placement.Slicing.chip.Slicing.width
        ~h:placement.Slicing.chip.Slicing.height
    in
    Array.iter
      (fun r ->
        Alcotest.(check bool) "inside chip" true
          (Mae_geom.Rect.contains_point chip (Mae_geom.Rect.center r)))
      placement.Slicing.rects;
    let u = Slicing.utilization placement in
    Alcotest.(check bool) "utilization in (0,1]" true (u > 0. && u <= 1. +. 1e-9)
  done

let test_place_areas_match_options () =
  let shapes = [| Shape.singleton ~w:4. ~h:2.; Shape.singleton ~w:3. ~h:5. |] in
  let expr =
    Result.get_ok
      (Polish.of_elements [| Polish.Operand 0; Polish.Operand 1; Polish.Horizontal_cut |])
  in
  let placement = Slicing.place expr shapes in
  S.check_float "module 0 area" 8. (Mae_geom.Rect.area placement.Slicing.rects.(0));
  S.check_float "module 1 area" 15. (Mae_geom.Rect.area placement.Slicing.rects.(1))

(* Fp_anneal *)

let test_fp_anneal_improves_over_initial () =
  let rng = S.rng 13 in
  let shapes =
    Array.init 8 (fun i ->
        Shape.with_rotations
          (Shape.singleton ~w:(Float.of_int (4 + i)) ~h:(Float.of_int (12 - i))))
  in
  let initial = (Slicing.eval (Polish.initial 8) shapes).Slicing.area in
  let result = Fp_anneal.run ~schedule:Mae_layout.Anneal.quick_schedule ~rng shapes in
  Alcotest.(check bool) "no worse than initial" true
    (result.Fp_anneal.placement.Slicing.chip.Slicing.area <= initial +. 1e-9);
  S.raises_invalid (fun () -> ignore (Fp_anneal.run ~rng [||]))

let test_fp_anneal_single_module () =
  let result =
    Fp_anneal.run ~schedule:Mae_layout.Anneal.quick_schedule ~rng:(S.rng 3)
      [| Shape.square ~area:49. |]
  in
  S.check_float "trivial chip" 49. result.Fp_anneal.placement.Slicing.chip.Slicing.area

(* Flow: the iteration study *)

let test_flow_perfect_estimates_converge_immediately () =
  let specs =
    List.init 5 (fun i ->
        let area = 100. *. Float.of_int (i + 1) in
        {
          Flow.name = Printf.sprintf "m%d" i;
          estimated_shapes = Shape.square ~area;
          real_area = area;
        })
  in
  let report =
    Flow.converge ~schedule:Mae_layout.Anneal.quick_schedule ~rng:(S.rng 1) specs
  in
  Alcotest.(check int) "one round" 1 report.Flow.rounds;
  Alcotest.(check bool) "no misfits" true
    (List.for_all (fun r -> r.Flow.misfits = []) report.Flow.history)

let test_flow_underestimates_need_more_rounds () =
  let specs =
    List.init 5 (fun i ->
        let area = 100. *. Float.of_int (i + 1) in
        {
          Flow.name = Printf.sprintf "m%d" i;
          estimated_shapes = Shape.square ~area:(area /. 4.);
          real_area = area;
        })
  in
  let report =
    Flow.converge ~schedule:Mae_layout.Anneal.quick_schedule ~rng:(S.rng 1) specs
  in
  Alcotest.(check bool) "more than one round" true (report.Flow.rounds > 1);
  (* the final round has no misfits *)
  begin
    match List.rev report.Flow.history with
    | last :: _ -> Alcotest.(check bool) "converged" true (last.Flow.misfits = [])
    | [] -> Alcotest.fail "no history"
  end

let test_flow_validation () =
  S.raises_invalid (fun () ->
      ignore (Flow.converge ~rng:(S.rng 1) []));
  S.raises_invalid (fun () ->
      ignore
        (Flow.converge ~rng:(S.rng 1) ~tolerance:(-0.5)
           [ { Flow.name = "m"; estimated_shapes = Shape.square ~area:1.; real_area = 1. } ]));
  S.raises_invalid (fun () ->
      ignore
        (Flow.converge ~rng:(S.rng 1)
           [ { Flow.name = "m"; estimated_shapes = Shape.square ~area:1.; real_area = 0. } ]))

(* Properties *)

let props =
  let open QCheck2.Gen in
  let shape_gen =
    map
      (fun pts ->
        Shape.of_list
          (List.map (fun (w, h) -> (Float.of_int w, Float.of_int h)) pts))
      (list_size (int_range 1 8) (pair (int_range 1 40) (int_range 1 40)))
  in
  [
    S.qtest "shape frontier strictly decreasing heights" shape_gen (fun s ->
        let rec ok = function
          | (wa, ha) :: ((wb, hb) :: _ as rest) ->
              wa < wb && ha > hb && ok rest
          | [ _ ] | [] -> true
        in
        ok (Shape.options s));
    S.qtest "combine areas at least sum of best areas"
      (pair shape_gen shape_gen)
      (fun (a, b) ->
        let combined = Shape.combine_vertical a b in
        Shape.min_area combined >= Shape.min_area a +. Shape.min_area b -. 1e-6);
    S.qtest "rotation is involutive on the frontier" shape_gen (fun s ->
        let r = Shape.with_rotations s in
        Shape.options (Shape.with_rotations r) = Shape.options r);
    S.qtest "random polish expressions evaluate positive"
      (pair int (int_range 1 9))
      (fun (seed, n) ->
        let rng = S.rng seed in
        let expr = ref (Polish.initial n) in
        for _ = 1 to 30 do expr := Polish.random_move rng !expr done;
        let shapes = Array.init n (fun i -> Shape.square ~area:(Float.of_int (i + 1))) in
        (Slicing.eval !expr shapes).Slicing.area > 0.);
    S.qtest "chip area at least total module area"
      (pair int (int_range 1 9))
      (fun (seed, n) ->
        let rng = S.rng seed in
        let shapes =
          Array.init n (fun _ ->
              Shape.singleton
                ~w:(1. +. Mae_prob.Rng.float rng 9.)
                ~h:(1. +. Mae_prob.Rng.float rng 9.))
        in
        let total =
          Array.fold_left (fun acc s -> acc +. Shape.min_area s) 0. shapes
        in
        (Slicing.eval (Polish.initial n) shapes).Slicing.area >= total -. 1e-6);
  ]

(* Chip assembly from the estimate database *)

let chip_store () =
  let registry = Mae_tech.Registry.create () in
  let store = Mae_db.Store.create () in
  List.iter
    (fun circuit ->
      match Mae.Driver.run_circuit ~registry circuit with
      | Ok r -> begin
          match Mae_db.Record.of_report r with
          | Ok record -> Mae_db.Store.add store record
          | Error msg -> Alcotest.failf "of_report: %s" (Mae_db.Record.of_report_error_to_string msg)
        end
      | Error _ -> Alcotest.fail "driver failed")
    [ S.counter8; S.full_adder; Mae_workload.Generators.decoder 3 ];
  store

let test_chip_plan () =
  let store = chip_store () in
  match
    Chip.plan ~schedule:Mae_layout.Anneal.quick_schedule ~rng:(S.rng 3) store
  with
  | Error e -> Alcotest.failf "chip plan failed: %s" e
  | Ok plan ->
      Alcotest.(check int) "three modules" 3 (List.length plan.Chip.placements);
      Alcotest.(check bool) "positive area" true (plan.Chip.chip_area > 0.);
      Alcotest.(check bool) "utilization in (0,1]" true
        (plan.Chip.utilization > 0. && plan.Chip.utilization <= 1. +. 1e-9);
      (* modules fit inside the chip and do not overlap *)
      let chip_rect =
        Mae_geom.Rect.make ~x:0. ~y:0. ~w:plan.Chip.chip_width
          ~h:plan.Chip.chip_height
      in
      List.iter
        (fun (_, rect) ->
          Alcotest.(check bool) "inside chip" true
            (Mae_geom.Rect.contains_point chip_rect (Mae_geom.Rect.center rect)))
        plan.Chip.placements;
      let rects = List.map snd plan.Chip.placements in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if i < j then
                Alcotest.(check bool) "disjoint" false
                  (Mae_geom.Rect.intersects a b))
            rects)
        rects

let test_chip_allowance_grows_area () =
  let store = chip_store () in
  let area allowance =
    match
      Chip.plan ~schedule:Mae_layout.Anneal.quick_schedule
        ~routing_allowance:allowance ~rng:(S.rng 3) store
    with
    | Ok plan -> plan.Chip.chip_area
    | Error e -> Alcotest.failf "plan failed: %s" e
  in
  Alcotest.(check bool) "allowance costs area" true (area 0.3 > area 0.)

let test_chip_plan_errors () =
  begin
    match Chip.plan ~rng:(S.rng 1) (Mae_db.Store.create ()) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected error on empty store"
  end;
  match Chip.plan ~routing_allowance:2. ~rng:(S.rng 1) (chip_store ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error on bad allowance"

let () =
  Alcotest.run "floorplan"
    [
      ( "shape",
        [
          Alcotest.test_case "prunes dominated" `Quick test_shape_prunes_dominated;
          Alcotest.test_case "validation" `Quick test_shape_validation;
          Alcotest.test_case "square" `Quick test_shape_square;
          Alcotest.test_case "rotations" `Quick test_shape_rotations;
          Alcotest.test_case "combines" `Quick test_shape_combines;
          Alcotest.test_case "best option" `Quick test_best_option;
        ] );
      ( "polish",
        [
          Alcotest.test_case "initial" `Quick test_polish_initial;
          Alcotest.test_case "rejects invalid" `Quick test_polish_of_elements_rejects;
          Alcotest.test_case "moves preserve validity" `Quick
            test_polish_moves_preserve_validity;
          Alcotest.test_case "single module" `Quick test_polish_single_module;
        ] );
      ( "slicing",
        [
          Alcotest.test_case "two modules" `Quick test_slicing_two_modules;
          Alcotest.test_case "min-area option" `Quick
            test_slicing_picks_min_area_option;
          Alcotest.test_case "mismatch" `Quick test_slicing_shape_count_mismatch;
          Alcotest.test_case "place: disjoint & inside" `Quick
            test_place_no_overlap_within_chip;
          Alcotest.test_case "place: areas" `Quick test_place_areas_match_options;
        ] );
      ( "fp_anneal",
        [
          Alcotest.test_case "improves" `Quick test_fp_anneal_improves_over_initial;
          Alcotest.test_case "single module" `Quick test_fp_anneal_single_module;
        ] );
      ( "chip",
        [
          Alcotest.test_case "plan" `Quick test_chip_plan;
          Alcotest.test_case "allowance" `Quick test_chip_allowance_grows_area;
          Alcotest.test_case "errors" `Quick test_chip_plan_errors;
        ] );
      ( "flow",
        [
          Alcotest.test_case "perfect estimates" `Quick
            test_flow_perfect_estimates_converge_immediately;
          Alcotest.test_case "underestimates iterate" `Quick
            test_flow_underestimates_need_more_rounds;
          Alcotest.test_case "validation" `Quick test_flow_validation;
        ] );
      ("properties", props);
    ]
