(* End-to-end and cross-library invariants: the properties the paper's
   evaluation rests on. *)

module S = Mae_test_support.Support

let quick = Mae_layout.Anneal.quick_schedule

(* Table 1 shape: the full-custom estimate tracks the hand-layout flow
   closely on small modules. *)
let test_fullcustom_estimates_close () =
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      let est =
        Mae.Fullcustom.estimate ~mode:Mae.Config.Exact_areas e.circuit S.nmos
      in
      let real = Mae_layout.Fc_flow.run ~rng:(S.rng 99) e.circuit S.nmos in
      let err =
        Mae_prob.Stats.relative_error ~estimated:est.Mae.Estimate.area
          ~real:real.Mae_layout.Row_layout.area
      in
      if Float.abs err > 0.40 then
        Alcotest.failf "%s: |error| %.1f%% exceeds 40%%" e.name (100. *. err))
    (Mae_workload.Bench_circuits.table1 ())

(* Table 1 footnote case reproduced exactly: the all-two-component module
   estimates with zero wire area and its layout realizes it. *)
let test_footnote_module_exact () =
  let chain = Mae_workload.Generators.pass_chain 8 in
  let est = Mae.Fullcustom.estimate ~mode:Mae.Config.Exact_areas chain S.nmos in
  let real =
    Mae_layout.Fc_flow.run ~rng:(S.rng 99) ~row_candidates:[ 1 ] chain S.nmos
  in
  S.check_float "wire estimate zero" 0. est.Mae.Estimate.wire_area;
  let err =
    Mae_prob.Stats.relative_error ~estimated:est.Mae.Estimate.area
      ~real:real.Mae_layout.Row_layout.area
  in
  Alcotest.(check bool) "within 5%" true (Float.abs err < 0.05)

(* Table 2 shape 1: the standard-cell estimate is an upper bound. *)
let test_stdcell_upper_bound () =
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      List.iter
        (fun rows ->
          let est = Mae.Stdcell.estimate ~rows e.circuit S.nmos in
          let real =
            Mae_layout.Sc_flow.run ~schedule:quick ~rng:(S.rng 5) ~rows
              e.circuit S.nmos
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s rows=%d" e.name rows)
            true
            (est.Mae.Estimate.area > real.Mae_layout.Row_layout.area))
        [ 2; 3; 4; 6 ])
    (Mae_workload.Bench_circuits.table2 ())

(* Table 2 shape 2: the estimate decreases as the row count increases
   (checked over rows >= 2, where the paper's sweep lives). *)
let test_stdcell_estimate_decreases_with_rows () =
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      let areas =
        List.map
          (fun rows ->
            (Mae.Stdcell.estimate ~rows e.circuit S.nmos).Mae.Estimate.area)
          [ 2; 4; 8 ]
      in
      match areas with
      | [ a2; a4; a8 ] ->
          Alcotest.(check bool) (e.name ^ " 2->4") true (a4 < a2);
          Alcotest.(check bool) (e.name ^ " 4->8") true (a8 < a4)
      | _ -> Alcotest.fail "unexpected sweep size")
    (Mae_workload.Bench_circuits.table2 ())

(* Table 2 shape 3: the section 7 track-sharing correction moves the
   upper bound into the paper's +42..70% error band. *)
let test_track_sharing_calibration_closes_gap () =
  let circuits = Mae_workload.Bench_circuits.table2 () in
  let pairs =
    List.concat_map
      (fun (e : Mae_workload.Bench_circuits.entry) ->
        List.map
          (fun rows ->
            let est = Mae.Stdcell.estimate ~rows e.circuit S.nmos in
            let real =
              Mae_layout.Sc_flow.run ~schedule:quick ~rng:(S.rng 7) ~rows
                e.circuit S.nmos
            in
            (est, real.Mae_layout.Row_layout.area))
          [ 3; 4 ])
      circuits
  in
  match Mae.Extensions.calibrate_sharing_factor pairs with
  | None -> Alcotest.fail "calibration failed"
  | Some factor ->
      Alcotest.(check bool) "factor in (0,1)" true (factor > 0. && factor < 1.);
      List.iter
        (fun (e : Mae_workload.Bench_circuits.entry) ->
          let corrected =
            Mae.Extensions.with_track_sharing ~factor ~rows:4 e.circuit S.nmos
          in
          let real =
            Mae_layout.Sc_flow.run ~schedule:quick ~rng:(S.rng 7) ~rows:4
              e.circuit S.nmos
          in
          let err =
            Mae_prob.Stats.relative_error
              ~estimated:corrected.Mae.Estimate.area
              ~real:real.Mae_layout.Row_layout.area
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s corrected error %.0f%% under 120%%" e.name
               (100. *. err))
            true
            (err > -0.2 && err < 1.2))
        circuits

(* The headline Table 2 property generalizes beyond the benchmark suite. *)
let upper_bound_props =
  [
    S.qtest ~count:20 "stdcell estimate upper-bounds random layouts"
      QCheck2.Gen.(pair (int_range 1 10000) (int_range 15 60))
      (fun (seed, devices) ->
        let c =
          Mae_workload.Random_circuit.generate ~rng:(S.rng seed)
            { Mae_workload.Random_circuit.default_params with devices }
        in
        let rows = 2 + (seed mod 4) in
        let est = Mae.Stdcell.estimate ~rows c S.nmos in
        let real =
          Mae_layout.Sc_flow.run ~schedule:quick ~rng:(S.rng (seed + 99)) ~rows
            c S.nmos
        in
        est.Mae.Estimate.area > real.Mae_layout.Row_layout.area);
  ]

(* The full Figure 1 pipeline: HDL text in, floor-planner database out. *)
let test_figure1_pipeline () =
  let registry = Mae_tech.Registry.create () in
  let hdl =
    Mae_hdl.Printer.to_string S.counter8 ^ Mae_hdl.Printer.to_string S.full_adder
  in
  match Mae.Driver.run_string ~registry hdl with
  | Error e ->
      Alcotest.failf "pipeline failed: %s"
        (Format.asprintf "%a" Mae.Driver.pp_error e)
  | Ok reports ->
      Alcotest.(check int) "two modules" 2 (List.length reports);
      let store = Mae_db.Store.create () in
      List.iter
        (fun r ->
          match Mae_db.Record.of_report r with
          | Ok record -> Mae_db.Store.add store record
          | Error msg -> Alcotest.failf "of_report: %s" (Mae_db.Record.of_report_error_to_string msg))
        reports;
      (* feed the stored shapes to the floor planner *)
      let shapes =
        Mae_db.Store.records store
        |> List.map (fun (r : Mae_db.Record.t) ->
               Mae_floorplan.Shape.with_rotations
                 (Mae_floorplan.Shape.of_list r.shapes))
        |> Array.of_list
      in
      let result =
        Mae_floorplan.Fp_anneal.run ~schedule:quick ~rng:(S.rng 3) shapes
      in
      let chip = result.Mae_floorplan.Fp_anneal.placement.Mae_floorplan.Slicing.chip in
      Alcotest.(check bool) "chip area positive" true
        (chip.Mae_floorplan.Slicing.area > 0.)

(* SPICE front end feeds the same pipeline. *)
let test_spice_pipeline () =
  let spice =
    "* technology: nmos25\n\
     .subckt buffer in out\n\
     Xa in mid inv\n\
     Xb mid out inv\n\
     .ends\n"
  in
  match Mae_hdl.Spice.parse_string spice with
  | Error e -> Alcotest.failf "spice failed: line %d %s" e.line e.message
  | Ok [ circuit ] -> begin
      let registry = Mae_tech.Registry.create () in
      match Mae.Driver.run_circuit ~registry circuit with
      | Ok report ->
          let sc = Option.get (Mae.Driver.stdcell report) in
          Alcotest.(check bool) "estimated" true (sc.Mae.Estimate.area > 0.)
      | Error e ->
          Alcotest.failf "driver failed: %s"
            (Format.asprintf "%a" Mae.Driver.pp_error e)
    end
  | Ok _ -> Alcotest.fail "expected one circuit"

(* Technology independence: the same schematic estimates sanely in every
   built-in process. *)
let test_multi_technology () =
  List.iter
    (fun (p : Mae_tech.Process.t) ->
      let circuit = Mae_workload.Generators.counter ~technology:p.name 4 in
      let est = Mae.Stdcell.estimate_auto circuit p in
      Alcotest.(check bool) (p.name ^ " positive") true (est.Mae.Estimate.area > 0.))
    Mae_tech.Builtin.all

(* The floor-planning iteration claim, end to end on real module data. *)
let test_estimates_reduce_iterations () =
  let rng = S.rng 71 in
  let modules =
    Mae_workload.Rent.generate_modules ~rng
      { Mae_workload.Rent.default_params with clusters = 4; cluster_size = 24 }
  in
  let reals =
    List.map
      (fun c ->
        let rows = Mae.Row_select.initial_rows c S.nmos in
        (Mae_layout.Sc_flow.run ~schedule:quick ~rng:(Mae_prob.Rng.split rng)
           ~rows c S.nmos).Mae_layout.Row_layout.area)
      modules
  in
  let estimator_specs =
    List.map2
      (fun c real_area ->
        let shapes =
          Mae.Extensions.stdcell_shape_candidates c S.nmos
          |> List.map (fun (e : Mae.Estimate.stdcell) -> (e.width, e.height))
        in
        {
          Mae_floorplan.Flow.name = c.Mae_netlist.Circuit.name;
          estimated_shapes =
            Mae_floorplan.Shape.with_rotations (Mae_floorplan.Shape.of_list shapes);
          real_area;
        })
      modules reals
  in
  let naive_specs =
    List.map2
      (fun c real_area ->
        let w, h = Mae_baselines.Naive.estimate_square c S.nmos in
        {
          Mae_floorplan.Flow.name = c.Mae_netlist.Circuit.name;
          estimated_shapes = Mae_floorplan.Shape.singleton ~w ~h;
          real_area;
        })
      modules reals
  in
  let with_est =
    Mae_floorplan.Flow.converge ~schedule:quick ~rng:(S.rng 5) estimator_specs
  in
  let with_naive =
    Mae_floorplan.Flow.converge ~schedule:quick ~rng:(S.rng 5) naive_specs
  in
  Alcotest.(check bool) "estimator needs no more rounds" true
    (with_est.Mae_floorplan.Flow.rounds <= with_naive.Mae_floorplan.Flow.rounds)

(* Place, route, expand wires, extract, compare: the full physical loop on
   random circuits. *)
let test_route_and_extract_random () =
  for seed = 1 to 6 do
    let circuit =
      Mae_workload.Random_circuit.generate ~rng:(S.rng seed)
        { Mae_workload.Random_circuit.default_params with devices = 30 }
    in
    let layout =
      Mae_layout.Sc_flow.run ~schedule:quick ~rng:(S.rng (seed + 50)) ~rows:3
        circuit S.nmos
    in
    let wiring = Mae_layout.Sc_flow.wiring circuit S.nmos layout in
    let report = Mae_layout.Extract.lvs wiring circuit in
    if wiring.Mae_layout.Wiring.dropped_constraints = 0 then
      Alcotest.(check bool)
        (Printf.sprintf "seed %d lvs clean" seed)
        true
        (Mae_layout.Extract.clean report)
    else
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d no opens" seed)
        [] report.Mae_layout.Extract.opens
  done

(* The simulator agrees with the estimator's workload before and after
   layout: layout does not change the netlist, so functional checks carry
   over to the layouts the estimator is judged against. *)
let test_simulation_guards_benchmarks () =
  let c = Mae_workload.Generators.ripple_adder 3 in
  let inputs =
    Mae_sim.Simulator.bits ~prefix:"a" ~width:3 5
    @ Mae_sim.Simulator.bits ~prefix:"b" ~width:3 6
    @ [ ("cin", false) ]
  in
  match Mae_sim.Simulator.eval c ~inputs with
  | Error e ->
      Alcotest.failf "sim: %s" (Format.asprintf "%a" Mae_sim.Simulator.pp_error e)
  | Ok outputs ->
      let total =
        List.fold_left
          (fun acc (name, v) ->
            if not v then acc
            else if name = "cout" then acc lor 8
            else
              acc
              lor (1 lsl int_of_string (String.sub name 1 (String.length name - 1))))
          0 outputs
      in
      Alcotest.(check int) "5+6" 11 total

(* The ISCAS-85 anchor runs through the whole stack. *)
let test_c17_end_to_end () =
  let c = Mae_workload.Generators.c17 () in
  let registry = Mae_tech.Registry.create () in
  match Mae.Driver.run_circuit ~registry c with
  | Error e ->
      Alcotest.failf "driver: %s" (Format.asprintf "%a" Mae.Driver.pp_error e)
  | Ok report ->
      let sc = Option.get (Mae.Driver.stdcell report) in
      Alcotest.(check bool) "estimated" true (sc.Mae.Estimate.area > 0.);
      let layout =
        Mae_layout.Sc_flow.run ~schedule:quick ~rng:(S.rng 17) ~rows:2 c S.nmos
      in
      Alcotest.(check bool) "upper bound on c17" true
        (sc.Mae.Estimate.area > 0.
        && (Mae.Stdcell.estimate ~rows:2 c S.nmos).Mae.Estimate.area
           > layout.Mae_layout.Row_layout.area);
      let wiring = Mae_layout.Sc_flow.wiring c S.nmos layout in
      Alcotest.(check bool) "lvs clean" true
        (Mae_layout.Extract.clean (Mae_layout.Extract.lvs wiring c))

(* Runtime sanity (the paper quotes seconds-level runtimes for the
   estimator; ours should be well under that on modern hardware). *)
let test_estimator_fast () =
  let t0 = Mae_obs.Clock.monotonic () in
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      ignore (Mae.Stdcell.estimate_auto e.circuit S.nmos);
      ignore (Mae.Fullcustom.estimate_both e.circuit S.nmos))
    (Mae_workload.Bench_circuits.table1 () @ Mae_workload.Bench_circuits.table2 ());
  let elapsed = Mae_obs.Clock.monotonic () -. t0 in
  Alcotest.(check bool) "under 1.5s (the paper's Sun 3/50 budget)" true
    (elapsed < 1.5)

let () =
  Alcotest.run "integration"
    [
      ( "table1",
        [
          Alcotest.test_case "fc estimates close" `Slow
            test_fullcustom_estimates_close;
          Alcotest.test_case "footnote module" `Slow test_footnote_module_exact;
        ] );
      ( "table2",
        [
          Alcotest.test_case "upper bound" `Slow test_stdcell_upper_bound;
          Alcotest.test_case "decreasing in rows" `Quick
            test_stdcell_estimate_decreases_with_rows;
          Alcotest.test_case "sharing calibration" `Slow
            test_track_sharing_calibration_closes_gap;
        ] );
      ("upper-bound-property", upper_bound_props);
      ( "pipeline",
        [
          Alcotest.test_case "figure 1" `Quick test_figure1_pipeline;
          Alcotest.test_case "spice" `Quick test_spice_pipeline;
          Alcotest.test_case "multi technology" `Quick test_multi_technology;
        ] );
      ( "physical-loop",
        [
          Alcotest.test_case "iscas c17 end to end" `Quick test_c17_end_to_end;
          Alcotest.test_case "route & extract random" `Slow
            test_route_and_extract_random;
          Alcotest.test_case "simulation guard" `Quick
            test_simulation_guards_benchmarks;
        ] );
      ( "floorplanning",
        [
          Alcotest.test_case "iteration reduction" `Slow
            test_estimates_reduce_iterations;
        ] );
      ("runtime", [ Alcotest.test_case "estimator fast" `Quick test_estimator_fast ]);
    ]
