(* The methodology registry: the estimator set every layer selects from.

   Covers registration (all eight estimators present), bit-for-bit
   agreement between registry runs and the direct estimator calls, the
   gate-array and baseline paths end-to-end through the driver and the
   batch engine (including cross-jobs determinism), and the typed error
   surface (unknown methods, per-method failure isolation). *)

module S = Mae_test_support.Support

let () = Mae_baselines.Methods.ensure_registered ()

let all_names =
  [
    "stdcell"; "fullcustom-exact"; "fullcustom-average"; "gatearray"; "naive";
    "champ"; "pla"; "plest";
  ]

let test_all_registered () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (Option.is_some (Mae.Methodology.find name)))
    all_names;
  (* names () lists registration order: core four first, then baselines *)
  Alcotest.(check (list string)) "registry names" all_names
    (Mae.Methodology.names ());
  Alcotest.(check (list string))
    "default set" [ "stdcell"; "fullcustom-exact"; "fullcustom-average" ]
    Mae.Methodology.default_names

let test_selection_parsing () =
  (match Mae.Methodology.selection_of_string "default" with
  | Ok names ->
      Alcotest.(check (list string)) "default alias"
        Mae.Methodology.default_names names
  | Error e -> Alcotest.failf "default alias: %s" e);
  (match Mae.Methodology.selection_of_string "all" with
  | Ok names -> Alcotest.(check (list string)) "all alias" all_names names
  | Error e -> Alcotest.failf "all alias: %s" e);
  (match Mae.Methodology.selection_of_string "gatearray, naive" with
  | Ok names ->
      Alcotest.(check (list string)) "spaces tolerated"
        [ "gatearray"; "naive" ] names
  | Error e -> Alcotest.failf "pair: %s" e);
  Alcotest.(check bool) "empty set rejected" true
    (Result.is_error (Mae.Methodology.selection_of_string ""));
  Alcotest.(check bool) "unknown name rejected" true
    (Result.is_error (Mae.Methodology.selection_of_string "stdcell,zzz"))

let registry = Mae_tech.Registry.create ()

let report_of ?methods circuit =
  match Mae.Driver.run_circuit ~registry ?methods circuit with
  | Ok r -> r
  | Error e ->
      Alcotest.failf "driver: %s" (Format.asprintf "%a" Mae.Driver.pp_error e)

(* the registry's default set must reproduce the direct estimator calls
   bit for bit: same stats sharing, same functions, same order *)
let test_default_bit_for_bit () =
  let circuit = S.full_adder_tx in
  let process = Mae_tech.Builtin.nmos25 in
  let r = report_of circuit in
  let stats = Mae_netlist.Stats.compute circuit process in
  let direct_sc = Mae.Stdcell.estimate_auto ~stats circuit process in
  let direct_exact, direct_avg =
    Mae.Fullcustom.estimate_both ~stats circuit process
  in
  let sc = Option.get (Mae.Driver.stdcell r) in
  let fce = Option.get (Mae.Driver.fullcustom_exact r) in
  let fca = Option.get (Mae.Driver.fullcustom_average r) in
  let bits = Int64.bits_of_float in
  Alcotest.(check bool) "stdcell bit-for-bit" true
    (bits sc.Mae.Estimate.area = bits direct_sc.Mae.Estimate.area
    && bits sc.width = bits direct_sc.width
    && bits sc.height = bits direct_sc.height
    && sc.rows = direct_sc.rows);
  Alcotest.(check bool) "fullcustom exact bit-for-bit" true
    (bits fce.Mae.Estimate.area = bits direct_exact.Mae.Estimate.area);
  Alcotest.(check bool) "fullcustom average bit-for-bit" true
    (bits fca.Mae.Estimate.area = bits direct_avg.Mae.Estimate.area)

(* gatearray + every baseline end-to-end through the driver *)
let test_all_methods_through_driver () =
  let r = report_of ~methods:[ "all" ] S.full_adder_tx in
  Alcotest.(check int) "eight results" 8 (List.length r.results);
  Alcotest.(check (list string)) "no method failed" []
    (List.map fst (Mae.Driver.method_failures r));
  let area_of name =
    match Mae.Driver.find_result r name with
    | Some (Ok outcome) -> (Mae.Methodology.dims outcome).Mae.Methodology.area
    | Some (Error e) ->
        Alcotest.failf "%s failed: %s" name (Mae.Methodology.error_to_string e)
    | None -> Alcotest.failf "%s missing" name
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " positive area") true (area_of name > 0.))
    all_names;
  (* the gate-array outcome carries its payload *)
  match Mae.Driver.gatearray r with
  | Some ga ->
      Alcotest.(check bool) "gatearray routable" true
        ga.Mae.Gatearray.routable
  | None -> Alcotest.fail "gatearray outcome missing"

(* the same method set is deterministic across engine domain counts *)
let test_engine_determinism_all_methods () =
  let batch =
    [
      S.full_adder_tx; S.counter8;
      Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.decoder 3);
    ]
  in
  let digest results =
    List.map
      (function
        | Error e -> [ Int64.of_int (Hashtbl.hash (Format.asprintf "%a" Mae_engine.pp_error e)) ]
        | Ok (r : Mae.Driver.module_report) ->
            List.concat_map
              (fun (mr : Mae.Driver.method_result) ->
                match mr.outcome with
                | Ok o ->
                    let d = Mae.Methodology.dims o in
                    List.map Int64.bits_of_float
                      [ d.Mae.Methodology.area; d.width; d.height ]
                | Error e ->
                    [
                      Int64.of_int
                        (Hashtbl.hash (Mae.Methodology.error_to_string e));
                    ])
              r.results)
      results
  in
  let seq =
    Mae_engine.run_circuits ~jobs:1 ~methods:[ "all" ] ~registry batch
  in
  let par =
    Mae_engine.run_circuits ~jobs:4 ~methods:[ "all" ] ~registry batch
  in
  Alcotest.(check (list (list int64))) "jobs:1 = jobs:4 over all methods"
    (digest seq) (digest par);
  (* the persistent pool must be invisible in the results too, and stay
     so when reused across batches (steal patterns differ run to run) *)
  let pool = Mae_engine.Pool.create ~domains:3 in
  Fun.protect ~finally:(fun () -> Mae_engine.Pool.shutdown pool) @@ fun () ->
  for batch_no = 1 to 3 do
    let pooled =
      Mae_engine.run_circuits ~jobs:4 ~pool ~methods:[ "all" ] ~registry batch
    in
    Alcotest.(check (list (list int64)))
      (Printf.sprintf "jobs:1 = pooled jobs:4 (batch %d)" batch_no)
      (digest seq) (digest pooled)
  done

(* one failing methodology must not poison the others *)
let test_method_failure_isolation () =
  (* the paper's nmos25 process has no gate-array site cell geometry
     analogue for an empty circuit: estimate over a portless, deviceless
     module makes champ/plest report typed errors while naive succeeds *)
  let empty =
    Mae_netlist.Circuit.make ~name:"empty" ~technology:"nmos25" ~devices:[]
      ~nets:[] ~ports:[]
  in
  match Mae.Driver.run_circuit ~registry ~methods:[ "all" ] empty with
  | Error _ -> () (* validation may refuse outright: also fine, typed *)
  | Ok r ->
      List.iter
        (fun (mr : Mae.Driver.method_result) ->
          match mr.outcome with
          | Ok _ | Error _ -> () (* every slot present, nothing raised *))
        r.results;
      Alcotest.(check int) "all eight slots present" 8 (List.length r.results)

let test_unknown_method_typed_error () =
  match Mae.Driver.run_circuit ~registry ~methods:[ "no-such" ] S.full_adder with
  | Error (Mae.Driver.Unknown_method { methodology = "no-such"; _ }) -> ()
  | Error e ->
      Alcotest.failf "wrong error: %s"
        (Format.asprintf "%a" Mae.Driver.pp_error e)
  | Ok _ -> Alcotest.fail "expected Unknown_method"

(* make_ctx + run: the standalone entry the check harness uses *)
let test_standalone_run () =
  let process = Mae_tech.Builtin.nmos25 in
  let circuit = S.full_adder_tx in
  let ctx =
    match Mae.Methodology.make_ctx ~process circuit with
    | Ok ctx -> ctx
    | Error e -> Alcotest.failf "make_ctx: %s" (Mae.Methodology.error_to_string e)
  in
  let t = Option.get (Mae.Methodology.find "stdcell") in
  match Mae.Methodology.run ctx t circuit with
  | Ok (Mae.Methodology.Stdcell { auto; sweep }) ->
      Alcotest.(check bool) "positive area" true (auto.Mae.Estimate.area > 0.);
      Alcotest.(check bool) "sweep non-empty" true (sweep <> [])
  | Ok _ -> Alcotest.fail "wrong outcome variant"
  | Error e -> Alcotest.failf "run: %s" (Mae.Methodology.error_to_string e)

let () =
  Alcotest.run "methodology"
    [
      ( "registry",
        [
          Alcotest.test_case "all eight registered" `Quick test_all_registered;
          Alcotest.test_case "selection parsing" `Quick test_selection_parsing;
        ] );
      ( "driver",
        [
          Alcotest.test_case "default set bit-for-bit" `Quick
            test_default_bit_for_bit;
          Alcotest.test_case "all methods end-to-end" `Quick
            test_all_methods_through_driver;
          Alcotest.test_case "failure isolation" `Quick
            test_method_failure_isolation;
          Alcotest.test_case "unknown method typed error" `Quick
            test_unknown_method_typed_error;
          Alcotest.test_case "standalone make_ctx + run" `Quick
            test_standalone_run;
        ] );
      ( "engine",
        [
          Alcotest.test_case "determinism across jobs" `Quick
            test_engine_determinism_all_methods;
        ] );
    ]
