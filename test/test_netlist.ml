open Mae_netlist
module S = Mae_test_support.Support

let test_device () =
  let d = Device.make ~index:0 ~name:"u1" ~kind:"inv" ~pins:[| 2; 1; 2 |] in
  Alcotest.(check (list int)) "distinct nets" [ 1; 2 ] (Device.nets d);
  Alcotest.(check bool) "connects" true (Device.connects_to d 2);
  Alcotest.(check bool) "not connects" false (Device.connects_to d 0);
  S.raises_invalid (fun () -> Device.make ~index:(-1) ~name:"x" ~kind:"k" ~pins:[||]);
  S.raises_invalid (fun () -> Device.make ~index:0 ~name:"" ~kind:"k" ~pins:[||])

let test_port () =
  Alcotest.(check bool) "in" true (Port.direction_of_string "in" = Some Port.Input);
  Alcotest.(check bool) "out" true (Port.direction_of_string "out" = Some Port.Output);
  Alcotest.(check bool) "inout" true (Port.direction_of_string "inout" = Some Port.Inout);
  Alcotest.(check bool) "bad" true (Port.direction_of_string "up" = None);
  List.iter
    (fun d ->
      Alcotest.(check bool) "round trip" true
        (Port.direction_of_string (Port.direction_to_string d) = Some d))
    [ Port.Input; Port.Output; Port.Inout ]

let test_circuit_validation () =
  let net i name = Net.make ~index:i ~name in
  (* pin referencing a nonexistent net *)
  S.raises_invalid (fun () ->
      Circuit.make ~name:"c" ~technology:"nmos25"
        ~devices:[ Device.make ~index:0 ~name:"u" ~kind:"inv" ~pins:[| 5 |] ]
        ~nets:[ net 0 "a" ] ~ports:[]);
  (* non-dense device indices *)
  S.raises_invalid (fun () ->
      Circuit.make ~name:"c" ~technology:"t"
        ~devices:[ Device.make ~index:1 ~name:"u" ~kind:"inv" ~pins:[||] ]
        ~nets:[] ~ports:[]);
  (* duplicate net names *)
  S.raises_invalid (fun () ->
      Circuit.make ~name:"c" ~technology:"t" ~devices:[]
        ~nets:[ net 0 "a"; net 1 "a" ] ~ports:[]);
  (* port referencing bad net *)
  S.raises_invalid (fun () ->
      Circuit.make ~name:"c" ~technology:"t" ~devices:[] ~nets:[]
        ~ports:[ Port.make ~name:"p" ~direction:Port.Input ~net:0 ])

let test_circuit_connectivity () =
  let c = S.tiny () in
  Alcotest.(check int) "devices" 2 (Circuit.device_count c);
  Alcotest.(check int) "nets" 3 (Circuit.net_count c);
  Alcotest.(check int) "ports" 2 (Circuit.port_count c);
  let m = Option.get (Circuit.find_net c "m") in
  Alcotest.(check int) "m degree" 2 (Circuit.degree c m.Net.index);
  Alcotest.(check bool) "m devices" true
    (Circuit.devices_on_net c m.Net.index = [| 0; 1 |]);
  let a = Option.get (Circuit.find_net c "a") in
  Alcotest.(check int) "a degree" 1 (Circuit.degree c a.Net.index);
  Alcotest.(check bool) "a is port net" true (Circuit.is_port_net c a.Net.index);
  Alcotest.(check bool) "m not port net" false (Circuit.is_port_net c m.Net.index);
  let i1 = Option.get (Circuit.find_device c "i1") in
  Alcotest.(check (list int)) "i1 nets"
    [ a.Net.index; m.Net.index ]
    (List.sort Int.compare (Circuit.nets_of_device c i1.Device.index));
  S.raises_invalid (fun () -> ignore (Circuit.degree c 99))

let test_builder_net_reuse () =
  let b = Builder.create ~name:"x" ~technology:"t" in
  let n1 = Builder.net b "w" in
  let n2 = Builder.net b "w" in
  Alcotest.(check int) "same net" n1 n2;
  ignore (Builder.add_device b ~name:"d1" ~kind:"inv" ~nets:[ "w"; "w2" ]);
  S.raises_invalid (fun () ->
      ignore (Builder.add_device b ~name:"d1" ~kind:"inv" ~nets:[ "w" ]));
  Builder.add_port b ~name:"p" ~direction:Port.Input ~net:"w";
  S.raises_invalid (fun () ->
      Builder.add_port b ~name:"p" ~direction:Port.Output ~net:"w2");
  let c = Builder.build b in
  Alcotest.(check int) "nets created on demand" 2 (Circuit.net_count c)

(* Stats: the paper's parameters on a known circuit. *)

let test_stats_equation_one () =
  (* full adder: 2 xor2 (24L) + 3 nand2 (12L); W_avg = (2*24+3*12)/5 *)
  let stats = Stats.compute S.full_adder S.nmos in
  Alcotest.(check int) "N" 5 stats.device_count;
  Alcotest.(check int) "H" 8 stats.net_count;
  Alcotest.(check int) "ports" 5 stats.port_count;
  S.check_float "W_avg (equation 1)" ((2. *. 24.) +. (3. *. 12.) |> fun t -> t /. 5.)
    stats.average_width;
  S.check_float "h_avg" 40. stats.average_height;
  S.check_float "cell area" (((2. *. 24.) +. (3. *. 12.)) *. 40.)
    stats.total_device_area;
  (* width classes: 3 devices of 12L, 2 of 24L *)
  Alcotest.(check bool) "classes" true
    (stats.width_classes = [ (12., 3); (24., 2) ])

let test_stats_degree_histogram () =
  let stats = Stats.compute S.full_adder S.nmos in
  (* nets: a(2: x1,g1), b(2), cin(2: x2,g2), p(3: x1,x2,g2), s(1),
     g(2), h(2), cout(1) -> y_1=2, y_2=5, y_3=1 *)
  Alcotest.(check bool) "histogram" true
    (stats.degree_histogram = [ (1, 2); (2, 5); (3, 1) ]);
  Alcotest.(check int) "max degree" 3 stats.max_degree

let test_stats_unknown_kind () =
  let b = Builder.create ~name:"bad" ~technology:"nmos25" in
  ignore (Builder.add_device b ~name:"u" ~kind:"warpcore" ~nets:[ "x" ]);
  let c = Builder.build b in
  Alcotest.check_raises "unknown kind" (Stats.Unknown_kind "warpcore")
    (fun () -> ignore (Stats.compute c S.nmos))

let test_validate () =
  let b = Builder.create ~name:"v" ~technology:"nmos25" in
  ignore (Builder.add_device b ~name:"u1" ~kind:"inv" ~nets:[ "a"; "b" ]);
  ignore (Builder.add_device b ~name:"u2" ~kind:"mystery" ~nets:[ "b"; "c" ]);
  ignore (Builder.net b "orphan");
  let c = Builder.build b in
  let issues = Validate.check c S.nmos in
  let has pred = List.exists pred issues in
  Alcotest.(check bool) "unknown kind" true
    (has (function
      | Validate.Unknown_device_kind { kind = "mystery"; _ } -> true
      | _ -> false));
  Alcotest.(check bool) "dangling" true
    (has (function Validate.Dangling_net { net = "orphan" } -> true | _ -> false));
  Alcotest.(check bool) "single pin a" true
    (has (function Validate.Single_pin_net { net = "a" } -> true | _ -> false));
  Alcotest.(check bool) "no ports" true
    (has (function Validate.No_ports -> true | _ -> false));
  (* errors sort first *)
  begin
    match issues with
    | first :: _ -> Alcotest.(check bool) "errors first" true (Validate.is_error first)
    | [] -> Alcotest.fail "expected issues"
  end;
  let empty = Builder.build (Builder.create ~name:"e" ~technology:"nmos25") in
  Alcotest.(check bool) "no devices" true
    (List.exists
       (function Validate.No_devices -> true | _ -> false)
       (Validate.check empty S.nmos))

let test_validate_clean_circuit () =
  let issues = Validate.check S.full_adder S.nmos in
  Alcotest.(check bool) "no errors" true
    (not (List.exists Validate.is_error issues))

(* Properties *)

let props =
  let open QCheck2.Gen in
  let circuit_gen =
    map
      (fun (seed, devices) ->
        Mae_workload.Random_circuit.generate ~rng:(S.rng seed)
          {
            Mae_workload.Random_circuit.default_params with
            devices;
            primary_outputs = Stdlib.min 8 devices;
          })
      (pair int (int_range 1 80))
  in
  [
    S.qtest "sum of degrees = sum of distinct device-net incidences"
      circuit_gen
      (fun c ->
        let by_nets = ref 0 in
        for n = 0 to Circuit.net_count c - 1 do
          by_nets := !by_nets + Circuit.degree c n
        done;
        let by_devices = ref 0 in
        for d = 0 to Circuit.device_count c - 1 do
          by_devices := !by_devices + List.length (Circuit.nets_of_device c d)
        done;
        !by_nets = !by_devices);
    S.qtest "histogram counts all connected nets" circuit_gen (fun c ->
        let stats = Stats.compute c S.nmos in
        let histogram_total =
          List.fold_left (fun acc (_, y) -> acc + y) 0 stats.degree_histogram
        in
        let connected = ref 0 in
        for n = 0 to Circuit.net_count c - 1 do
          if Circuit.degree c n >= 1 then incr connected
        done;
        histogram_total = !connected);
    S.qtest "average width within min/max class" circuit_gen (fun c ->
        let stats = Stats.compute c S.nmos in
        match stats.width_classes with
        | [] -> true
        | (first, _) :: _ ->
            let last, _ = List.nth stats.width_classes
                (List.length stats.width_classes - 1) in
            stats.average_width >= first -. 1e-9
            && stats.average_width <= last +. 1e-9);
  ]

(* --- canonicalization: the estimate store's keying property --- *)

(* Rebuild [c] with nets, devices and ports entered in a shuffled order:
   structurally identical, construction-order different. *)
let rebuild_permuted ~rng (c : Circuit.t) =
  let b = Builder.create ~name:c.name ~technology:c.technology in
  let shuffled a =
    let a = Array.copy a in
    Mae_prob.Rng.shuffle rng a;
    a
  in
  Array.iter
    (fun (n : Net.t) -> ignore (Builder.net b n.name))
    (shuffled c.nets);
  Array.iter
    (fun (d : Device.t) ->
      ignore
        (Builder.add_device b ~name:d.name ~kind:d.kind
           ~nets:
             (Array.to_list (Array.map (fun i -> c.nets.(i).Net.name) d.pins))))
    (shuffled c.devices);
  Array.iter
    (fun (p : Port.t) ->
      Builder.add_port b ~name:p.name ~direction:p.direction
        ~net:c.nets.(p.net).Net.name)
    (shuffled c.ports);
  Builder.build b

let random_circuit seed =
  Mae_workload.Random_circuit.generate
    ~name:(Printf.sprintf "canon%d" seed)
    ~rng:(S.rng seed)
    { Mae_workload.Random_circuit.default_params with devices = 30 }

let canonical_props =
  let open QCheck2.Gen in
  [
    S.qtest ~count:100 "construction order does not change the digest"
      (pair int int)
      (fun (seed, perm_seed) ->
        let c = random_circuit (abs seed mod 1000) in
        let c' = rebuild_permuted ~rng:(S.rng perm_seed) c in
        String.equal (Canonical.digest c) (Canonical.digest c'));
    S.qtest ~count:100 "structural mutations change the digest" (pair int int)
      (fun (seed, which) ->
        let c = random_circuit (abs seed mod 1000) in
        let d = Canonical.digest c in
        let mutated =
          match abs which mod 4 with
          | 0 -> Mae_workload.Mutate.add_device c ~kind:"inv" ~nets:[ "n0" ]
          | 1 ->
              Mae_workload.Mutate.drop_device c
                ~index:(abs which mod Circuit.device_count c)
          | 2 -> Mae_workload.Mutate.duplicate c
          | _ ->
              Mae_workload.Mutate.widen_net c
                ~net:c.nets.(abs seed mod Circuit.net_count c).Net.name
                ~extra:1 ~kind:"inv"
        in
        not (String.equal d (Canonical.digest mutated)));
  ]

let test_canonical_is_structural () =
  (* two independently built but identical tiny circuits *)
  let a = S.tiny () and b = S.tiny () in
  Alcotest.(check string) "same structure, same digest" (Canonical.digest a)
    (Canonical.digest b);
  (* entering nets in the opposite order changes nothing *)
  let b2 = Builder.create ~name:"tiny" ~technology:"nmos25" in
  ignore (Builder.net b2 "y");
  ignore (Builder.net b2 "m");
  ignore (Builder.net b2 "a");
  ignore (Builder.add_device b2 ~name:"i2" ~kind:"inv" ~nets:[ "m"; "y" ]);
  ignore (Builder.add_device b2 ~name:"i1" ~kind:"inv" ~nets:[ "a"; "m" ]);
  Builder.add_port b2 ~name:"y" ~direction:Port.Output ~net:"y";
  Builder.add_port b2 ~name:"a" ~direction:Port.Input ~net:"a";
  Alcotest.(check string) "reversed construction, same digest"
    (Canonical.digest a)
    (Canonical.digest (Builder.build b2));
  (* but rewiring a pin is a different circuit *)
  let b3 = Builder.create ~name:"tiny" ~technology:"nmos25" in
  Builder.add_port b3 ~name:"a" ~direction:Port.Input ~net:"a";
  Builder.add_port b3 ~name:"y" ~direction:Port.Output ~net:"y";
  ignore (Builder.add_device b3 ~name:"i1" ~kind:"inv" ~nets:[ "a"; "m" ]);
  ignore (Builder.add_device b3 ~name:"i2" ~kind:"inv" ~nets:[ "y"; "m" ]);
  Alcotest.(check bool) "rewired pins, different digest" false
    (String.equal (Canonical.digest a) (Canonical.digest (Builder.build b3)))

let () =
  Alcotest.run "netlist"
    [
      ("device", [ Alcotest.test_case "basics" `Quick test_device ]);
      ("port", [ Alcotest.test_case "directions" `Quick test_port ]);
      ( "circuit",
        [
          Alcotest.test_case "validation" `Quick test_circuit_validation;
          Alcotest.test_case "connectivity" `Quick test_circuit_connectivity;
        ] );
      ("builder", [ Alcotest.test_case "net reuse" `Quick test_builder_net_reuse ]);
      ( "stats",
        [
          Alcotest.test_case "equation 1" `Quick test_stats_equation_one;
          Alcotest.test_case "degree histogram" `Quick test_stats_degree_histogram;
          Alcotest.test_case "unknown kind" `Quick test_stats_unknown_kind;
        ] );
      ( "validate",
        [
          Alcotest.test_case "issues" `Quick test_validate;
          Alcotest.test_case "clean" `Quick test_validate_clean_circuit;
        ] );
      ( "canonical",
        Alcotest.test_case "digest is structural" `Quick
          test_canonical_is_structural
        :: canonical_props );
      ("properties", props);
    ]
