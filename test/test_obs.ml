(* The observability layer: span recording and nesting, Chrome trace
   export well-formedness, metrics registry correctness, and the
   guarantee that telemetry never changes an estimate. *)

module Obs = Mae_obs
module Span = Mae_obs.Span
module Metrics = Mae_obs.Metrics
module Json = Mae_obs.Json

let registry = Mae_tech.Registry.create ()

let random_batch ?(first_seed = 4000) n =
  List.init n (fun i ->
      Mae_workload.Random_circuit.generate
        ~name:(Printf.sprintf "obs%02d" i)
        ~rng:(Mae_prob.Rng.create ~seed:(first_seed + i))
        {
          Mae_workload.Random_circuit.default_params with
          devices = 20 + (i mod 5) * 10;
        })

(* --- Json --- *)

let test_json_parser () =
  let ok s = match Json.parse s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error _ -> ()
  in
  (match ok {|{"a": [1, 2.5, -3e2], "b": "x\n\"yé", "c": {"t": true, "n": null}}|} with
  | Json.Object fields ->
      Alcotest.(check int) "three members" 3 (List.length fields);
      (match List.assoc "a" fields with
      | Json.Array [ Json.Number a; Json.Number b; Json.Number c ] ->
          Alcotest.(check (float 1e-9)) "1" 1. a;
          Alcotest.(check (float 1e-9)) "2.5" 2.5 b;
          Alcotest.(check (float 1e-9)) "-300" (-300.) c
      | _ -> Alcotest.fail "array member")
  | _ -> Alcotest.fail "object expected");
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "[1] trailing";
  bad "\"unterminated";
  bad "nul";
  (* escape/parse round trip *)
  let tricky = "a\"b\\c\nd\te\r\x01" in
  match Json.parse (Json.escape tricky) with
  | Ok (Json.String s) -> Alcotest.(check string) "round trip" tricky s
  | _ -> Alcotest.fail "escape round trip"

(* --- spans --- *)

let test_span_recording () =
  Obs.with_enabled true @@ fun () ->
  Span.reset ();
  Span.with_ ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
      Span.with_ ~name:"inner" (fun () -> ignore (Sys.opaque_identity 1));
      Span.with_ ~name:"inner" (fun () -> ignore (Sys.opaque_identity 2)));
  (match Span.with_ ~name:"boom" (fun () -> raise Exit) with
  | () -> Alcotest.fail "Exit expected"
  | exception Exit -> ());
  let events = Span.events () in
  Alcotest.(check int) "four spans" 4 (List.length events);
  let outer =
    List.find (fun (e : Span.event) -> String.equal e.name "outer") events
  in
  let inners =
    List.filter (fun (e : Span.event) -> String.equal e.name "inner") events
  in
  Alcotest.(check int) "outer at depth 0" 0 outer.depth;
  List.iter
    (fun (i : Span.event) ->
      Alcotest.(check int) "inner at depth 1" 1 i.depth;
      Alcotest.(check bool) "inner within outer" true
        (i.ts >= outer.ts && i.ts +. i.dur <= outer.ts +. outer.dur +. 1e-6))
    inners;
  let child_time =
    List.fold_left (fun acc (i : Span.event) -> acc +. i.dur) 0. inners
  in
  Alcotest.(check (float 1e-6))
    "outer self = dur - children" (outer.dur -. child_time) outer.self;
  Alcotest.(check bool) "exception span still recorded" true
    (List.exists (fun (e : Span.event) -> String.equal e.name "boom") events);
  Span.reset ();
  Alcotest.(check int) "reset drops spans" 0 (List.length (Span.events ()))

let test_span_disabled_noop () =
  Obs.set_enabled false;
  Span.reset ();
  Span.with_ ~name:"invisible" (fun () -> ());
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.events ()))

(* --- trace export: well-formed JSON, nested non-overlapping lanes --- *)

let x_events trace =
  match Option.bind (Json.member "traceEvents" trace) Json.to_list with
  | None -> Alcotest.fail "traceEvents missing"
  | Some l ->
      List.filter
        (fun e ->
          match Option.bind (Json.member "ph" e) Json.to_string with
          | Some "X" -> true
          | _ -> false)
        l

let num name e =
  match Option.bind (Json.member name e) Json.to_number with
  | Some f -> f
  | None -> Alcotest.failf "X event lacks numeric %s" name

(* stack discipline per lane (tid): strictly nested or disjoint *)
let check_nesting events =
  let lanes = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let tid = int_of_float (num "tid" e) in
      let prev = Option.value (Hashtbl.find_opt lanes tid) ~default:[] in
      Hashtbl.replace lanes tid ((num "ts" e, num "dur" e) :: prev))
    events;
  Hashtbl.iter
    (fun tid spans ->
      let spans =
        List.sort
          (fun (t1, d1) (t2, d2) ->
            match Float.compare t1 t2 with
            | 0 -> Float.compare d2 d1
            | c -> c)
          spans
      in
      let tolerance = 1.0 (* µs *) in
      let stack = ref [] in
      List.iter
        (fun (ts, dur) ->
          let rec unwind () =
            match !stack with
            | (pts, pdur) :: rest when ts >= pts +. pdur -. tolerance ->
                stack := rest;
                unwind ()
            | _ -> ()
          in
          unwind ();
          (match !stack with
          | (pts, pdur) :: _ ->
              if ts +. dur > pts +. pdur +. tolerance then
                Alcotest.failf
                  "lane %d: span [%f, +%f] partially overlaps [%f, +%f]" tid ts
                  dur pts pdur
          | [] -> ());
          stack := (ts, dur) :: !stack)
        spans)
    lanes

let trace_roundtrip ~jobs () =
  Obs.with_enabled true @@ fun () ->
  Span.reset ();
  let batch = random_batch 10 in
  let results = Mae_engine.run_circuits ~jobs ~registry batch in
  Alcotest.(check int) "batch ran" 10 (List.length results);
  let trace =
    match Json.parse (Mae_obs.Trace.to_chrome_string ()) with
    | Ok t -> t
    | Error e -> Alcotest.failf "trace JSON: %s" e
  in
  let events = x_events trace in
  let names =
    List.filter_map (fun e -> Option.bind (Json.member "name" e) Json.to_string) events
  in
  let count name = List.length (List.filter (String.equal name) names) in
  (* one span per Figure-1 stage per module, one module parent each *)
  List.iter
    (fun stage -> Alcotest.(check int) stage 10 (count stage))
    [
      "driver.module"; "driver.validate"; "driver.expand"; "driver.stats";
      "driver.fullcustom"; "driver.stdcell"; "driver.sweep";
    ];
  Alcotest.(check int) "one batch span" 1 (count "engine.batch");
  check_nesting events;
  Span.reset ()

let test_trace_seq () = trace_roundtrip ~jobs:1 ()
let test_trace_par () = trace_roundtrip ~jobs:4 ()

(* --- metrics --- *)

let test_metrics_registry () =
  let c = Metrics.counter "test_obs_counter_total" in
  let c' = Metrics.counter "test_obs_counter_total" in
  Metrics.reset_counter c;
  Metrics.incr c;
  Metrics.add c' 4;
  Alcotest.(check int) "idempotent registration shares state" 5
    (Metrics.counter_value c);
  (match Metrics.gauge "test_obs_counter_total" with
  | _ -> Alcotest.fail "kind clash must raise"
  | exception Invalid_argument _ -> ());
  (match Metrics.counter "bad name!" with
  | _ -> Alcotest.fail "invalid name must raise"
  | exception Invalid_argument _ -> ());
  let g = Metrics.gauge "test_obs_gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.)) "gauge set/get" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram "test_obs_hist_seconds" ~buckets:[| 0.1; 1.; 10. |] in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 0.5; 5.; 50. ];
  Alcotest.(check int) "histogram count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "histogram sum" 56.05 (Metrics.histogram_sum h)

let test_prometheus_format () =
  let prom = Metrics.to_prometheus () in
  Alcotest.(check bool) "non-empty" true (String.length prom > 0);
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         if String.length line > 0 && not (Char.equal line.[0] '#') then
           match String.split_on_char ' ' line with
           | [ name; value ] ->
               Alcotest.(check bool)
                 (Printf.sprintf "parseable value in %S" line)
                 true
                 (Option.is_some (float_of_string_opt value));
               Alcotest.(check bool)
                 (Printf.sprintf "non-empty name in %S" line)
                 true (String.length name > 0)
           | _ -> Alcotest.failf "malformed line %S" line);
  (* cumulative histogram buckets must be monotone *)
  let last = Hashtbl.create 8 in
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         match String.index_opt line '{' with
         | Some i
           when String.length line > 7
                && String.equal (String.sub line (i - 7) 7) "_bucket" -> begin
             let name = String.sub line 0 i in
             match String.rindex_opt line ' ' with
             | Some sp ->
                 let v =
                   float_of_string
                     (String.sub line (sp + 1) (String.length line - sp - 1))
                 in
                 let prev = Option.value (Hashtbl.find_opt last name) ~default:0. in
                 Alcotest.(check bool)
                   (Printf.sprintf "monotone buckets for %s" name)
                   true (v >= prev);
                 Hashtbl.replace last name v
             | None -> ()
           end
         | _ -> ());
  match Json.parse (Metrics.to_json ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics JSON dump: %s" e

let test_metrics_match_engine () =
  Mae_prob.Kernel_cache.clear ();
  let counter name =
    match Metrics.find_counter name with
    | Some c -> Metrics.counter_value c
    | None -> Alcotest.failf "counter %s not registered" name
  in
  let modules_before = counter "mae_engine_modules_total" in
  let ok_before = counter "mae_engine_modules_ok_total" in
  let batch = random_batch 8 in
  let results, stats = Mae_engine.run_circuits_with_stats ~jobs:2 ~registry batch in
  Alcotest.(check int) "modules counter delta" stats.Mae_engine.modules
    (counter "mae_engine_modules_total" - modules_before);
  Alcotest.(check int) "ok counter delta" stats.Mae_engine.ok
    (counter "mae_engine_modules_ok_total" - ok_before);
  Alcotest.(check int) "ok = Ok slots"
    (List.length (List.filter Result.is_ok results))
    stats.Mae_engine.ok;
  (* the cache was cleared, so batch deltas = cumulative counters *)
  let cache = Mae_prob.Kernel_cache.stats () in
  Alcotest.(check int) "cache hits via registry" cache.hits
    (counter "mae_kernel_cache_hits_total");
  Alcotest.(check int) "cache misses via registry" cache.misses
    (counter "mae_kernel_cache_misses_total");
  Alcotest.(check int) "engine stats cache hits" cache.hits
    stats.Mae_engine.cache_hits;
  Alcotest.(check int) "per-domain counts sum to modules"
    stats.Mae_engine.modules
    (Array.fold_left ( + ) 0 stats.Mae_engine.per_domain);
  Alcotest.(check bool) "races never exceed misses" true
    (cache.races <= cache.misses)

(* --- telemetry must never change an estimate --- *)

let bits = Int64.bits_of_float

let digest results =
  List.map
    (function
      | Ok (r : Mae.Driver.module_report) ->
          ( r.circuit.Mae_netlist.Circuit.name,
            List.map bits
              [
                r.stdcell.Mae.Estimate.area;
                r.stdcell.Mae.Estimate.height;
                r.stdcell.Mae.Estimate.width;
                r.fullcustom_exact.Mae.Estimate.area;
                r.fullcustom_average.Mae.Estimate.area;
              ]
            @ List.map
                (fun (s : Mae.Estimate.stdcell) -> bits s.area)
                r.stdcell_sweep )
      | Error e -> (Format.asprintf "%a" Mae_engine.pp_error e, []))
    results

let test_disabled_identical () =
  let batch = random_batch 12 in
  Obs.set_enabled false;
  let off = Mae_engine.run_circuits ~jobs:2 ~registry batch in
  let on =
    Obs.with_enabled true (fun () ->
        Mae_engine.run_circuits ~jobs:2 ~registry batch)
  in
  Span.reset ();
  Alcotest.(check (list (pair string (list int64))))
    "telemetry on/off bit-for-bit" (digest off) (digest on)

let () =
  Alcotest.run "obs"
    [
      ("json", [ Alcotest.test_case "parser + escape" `Quick test_json_parser ]);
      ( "spans",
        [
          Alcotest.test_case "recording, nesting, self time" `Quick
            test_span_recording;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_span_disabled_noop;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome export jobs:1" `Quick test_trace_seq;
          Alcotest.test_case "chrome export jobs:4" `Quick test_trace_par;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry semantics" `Quick test_metrics_registry;
          Alcotest.test_case "prometheus + json dumps" `Quick
            test_prometheus_format;
          Alcotest.test_case "counters match engine totals" `Quick
            test_metrics_match_engine;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "telemetry never changes estimates" `Quick
            test_disabled_identical;
        ] );
    ]
