(* The observability layer: span recording and nesting, Chrome trace
   export well-formedness, metrics registry correctness, and the
   guarantee that telemetry never changes an estimate. *)

module Obs = Mae_obs
module Span = Mae_obs.Span
module Metrics = Mae_obs.Metrics
module Json = Mae_obs.Json

let registry = Mae_tech.Registry.create ()

let random_batch ?(first_seed = 4000) n =
  List.init n (fun i ->
      Mae_workload.Random_circuit.generate
        ~name:(Printf.sprintf "obs%02d" i)
        ~rng:(Mae_prob.Rng.create ~seed:(first_seed + i))
        {
          Mae_workload.Random_circuit.default_params with
          devices = 20 + (i mod 5) * 10;
        })

(* --- Json --- *)

let test_json_parser () =
  let ok s = match Json.parse s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error _ -> ()
  in
  (match ok {|{"a": [1, 2.5, -3e2], "b": "x\n\"yé", "c": {"t": true, "n": null}}|} with
  | Json.Object fields ->
      Alcotest.(check int) "three members" 3 (List.length fields);
      (match List.assoc "a" fields with
      | Json.Array [ Json.Number a; Json.Number b; Json.Number c ] ->
          Alcotest.(check (float 1e-9)) "1" 1. a;
          Alcotest.(check (float 1e-9)) "2.5" 2.5 b;
          Alcotest.(check (float 1e-9)) "-300" (-300.) c
      | _ -> Alcotest.fail "array member")
  | _ -> Alcotest.fail "object expected");
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "[1] trailing";
  bad "\"unterminated";
  bad "nul";
  (* escape/parse round trip *)
  let tricky = "a\"b\\c\nd\te\r\x01" in
  match Json.parse (Json.escape tricky) with
  | Ok (Json.String s) -> Alcotest.(check string) "round trip" tricky s
  | _ -> Alcotest.fail "escape round trip"

(* --- spans --- *)

let test_span_recording () =
  Obs.with_enabled true @@ fun () ->
  Span.reset ();
  Span.with_ ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
      Span.with_ ~name:"inner" (fun () -> ignore (Sys.opaque_identity 1));
      Span.with_ ~name:"inner" (fun () -> ignore (Sys.opaque_identity 2)));
  (match Span.with_ ~name:"boom" (fun () -> raise Exit) with
  | () -> Alcotest.fail "Exit expected"
  | exception Exit -> ());
  let events = Span.events () in
  Alcotest.(check int) "four spans" 4 (List.length events);
  let outer =
    List.find (fun (e : Span.event) -> String.equal e.name "outer") events
  in
  let inners =
    List.filter (fun (e : Span.event) -> String.equal e.name "inner") events
  in
  Alcotest.(check int) "outer at depth 0" 0 outer.depth;
  List.iter
    (fun (i : Span.event) ->
      Alcotest.(check int) "inner at depth 1" 1 i.depth;
      Alcotest.(check bool) "inner within outer" true
        (i.ts >= outer.ts && i.ts +. i.dur <= outer.ts +. outer.dur +. 1e-6))
    inners;
  let child_time =
    List.fold_left (fun acc (i : Span.event) -> acc +. i.dur) 0. inners
  in
  Alcotest.(check (float 1e-6))
    "outer self = dur - children" (outer.dur -. child_time) outer.self;
  Alcotest.(check bool) "exception span still recorded" true
    (List.exists (fun (e : Span.event) -> String.equal e.name "boom") events);
  Span.reset ();
  Alcotest.(check int) "reset drops spans" 0 (List.length (Span.events ()))

let test_span_disabled_noop () =
  Obs.set_enabled false;
  Span.reset ();
  Span.with_ ~name:"invisible" (fun () -> ());
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.events ()))

(* --- trace export: well-formed JSON, nested non-overlapping lanes --- *)

let x_events trace =
  match Option.bind (Json.member "traceEvents" trace) Json.to_list with
  | None -> Alcotest.fail "traceEvents missing"
  | Some l ->
      List.filter
        (fun e ->
          match Option.bind (Json.member "ph" e) Json.to_string with
          | Some "X" -> true
          | _ -> false)
        l

let num name e =
  match Option.bind (Json.member name e) Json.to_number with
  | Some f -> f
  | None -> Alcotest.failf "X event lacks numeric %s" name

(* stack discipline per lane (tid): strictly nested or disjoint *)
let check_nesting events =
  let lanes = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let tid = int_of_float (num "tid" e) in
      let prev = Option.value (Hashtbl.find_opt lanes tid) ~default:[] in
      Hashtbl.replace lanes tid ((num "ts" e, num "dur" e) :: prev))
    events;
  Hashtbl.iter
    (fun tid spans ->
      let spans =
        List.sort
          (fun (t1, d1) (t2, d2) ->
            match Float.compare t1 t2 with
            | 0 -> Float.compare d2 d1
            | c -> c)
          spans
      in
      let tolerance = 1.0 (* µs *) in
      let stack = ref [] in
      List.iter
        (fun (ts, dur) ->
          let rec unwind () =
            match !stack with
            | (pts, pdur) :: rest when ts >= pts +. pdur -. tolerance ->
                stack := rest;
                unwind ()
            | _ -> ()
          in
          unwind ();
          (match !stack with
          | (pts, pdur) :: _ ->
              if ts +. dur > pts +. pdur +. tolerance then
                Alcotest.failf
                  "lane %d: span [%f, +%f] partially overlaps [%f, +%f]" tid ts
                  dur pts pdur
          | [] -> ());
          stack := (ts, dur) :: !stack)
        spans)
    lanes

let trace_roundtrip ~jobs () =
  Obs.with_enabled true @@ fun () ->
  Span.reset ();
  let batch = random_batch 10 in
  let results = Mae_engine.run_circuits ~jobs ~registry batch in
  Alcotest.(check int) "batch ran" 10 (List.length results);
  let trace =
    match Json.parse (Mae_obs.Trace.to_chrome_string ()) with
    | Ok t -> t
    | Error e -> Alcotest.failf "trace JSON: %s" e
  in
  let events = x_events trace in
  let names =
    List.filter_map (fun e -> Option.bind (Json.member "name" e) Json.to_string) events
  in
  let count name = List.length (List.filter (String.equal name) names) in
  (* one span per Figure-1 stage per module, one module parent each;
     estimators run under per-methodology method.<name> spans *)
  List.iter
    (fun stage -> Alcotest.(check int) stage 10 (count stage))
    [
      "driver.module"; "driver.validate"; "driver.expand"; "driver.stats";
      "method.stdcell"; "method.fullcustom-exact"; "method.fullcustom-average";
    ];
  Alcotest.(check int) "one batch span" 1 (count "engine.batch");
  check_nesting events;
  Span.reset ()

let test_trace_seq () = trace_roundtrip ~jobs:1 ()
let test_trace_par () = trace_roundtrip ~jobs:4 ()

(* --- metrics --- *)

let test_metrics_registry () =
  let c = Metrics.counter "test_obs_counter_total" in
  let c' = Metrics.counter "test_obs_counter_total" in
  Metrics.reset_counter c;
  Metrics.incr c;
  Metrics.add c' 4;
  Alcotest.(check int) "idempotent registration shares state" 5
    (Metrics.counter_value c);
  (match Metrics.gauge "test_obs_counter_total" with
  | _ -> Alcotest.fail "kind clash must raise"
  | exception Invalid_argument _ -> ());
  (match Metrics.counter "bad name!" with
  | _ -> Alcotest.fail "invalid name must raise"
  | exception Invalid_argument _ -> ());
  let g = Metrics.gauge "test_obs_gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.)) "gauge set/get" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram "test_obs_hist_seconds" ~buckets:[| 0.1; 1.; 10. |] in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 0.5; 5.; 50. ];
  Alcotest.(check int) "histogram count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "histogram sum" 56.05 (Metrics.histogram_sum h)

let test_prometheus_format () =
  let prom = Metrics.to_prometheus () in
  Alcotest.(check bool) "non-empty" true (String.length prom > 0);
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         if String.length line > 0 && not (Char.equal line.[0] '#') then
           match String.split_on_char ' ' line with
           | [ name; value ] ->
               Alcotest.(check bool)
                 (Printf.sprintf "parseable value in %S" line)
                 true
                 (Option.is_some (float_of_string_opt value));
               Alcotest.(check bool)
                 (Printf.sprintf "non-empty name in %S" line)
                 true (String.length name > 0)
           | _ -> Alcotest.failf "malformed line %S" line);
  (* cumulative histogram buckets must be monotone *)
  let last = Hashtbl.create 8 in
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         match String.index_opt line '{' with
         | Some i
           when String.length line > 7
                && String.equal (String.sub line (i - 7) 7) "_bucket" -> begin
             let name = String.sub line 0 i in
             match String.rindex_opt line ' ' with
             | Some sp ->
                 let v =
                   float_of_string
                     (String.sub line (sp + 1) (String.length line - sp - 1))
                 in
                 let prev = Option.value (Hashtbl.find_opt last name) ~default:0. in
                 Alcotest.(check bool)
                   (Printf.sprintf "monotone buckets for %s" name)
                   true (v >= prev);
                 Hashtbl.replace last name v
             | None -> ()
           end
         | _ -> ());
  match Json.parse (Metrics.to_json ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics JSON dump: %s" e

let test_metrics_match_engine () =
  Mae_prob.Kernel_cache.clear ();
  let counter name =
    match Metrics.find_counter name with
    | Some c -> Metrics.counter_value c
    | None -> Alcotest.failf "counter %s not registered" name
  in
  let modules_before = counter "mae_engine_modules_total" in
  let ok_before = counter "mae_engine_modules_ok_total" in
  let batch = random_batch 8 in
  let results, stats = Mae_engine.run_circuits_with_stats ~jobs:2 ~registry batch in
  Alcotest.(check int) "modules counter delta" stats.Mae_engine.modules
    (counter "mae_engine_modules_total" - modules_before);
  Alcotest.(check int) "ok counter delta" stats.Mae_engine.ok
    (counter "mae_engine_modules_ok_total" - ok_before);
  Alcotest.(check int) "ok = Ok slots"
    (List.length (List.filter Result.is_ok results))
    stats.Mae_engine.ok;
  (* the cache was cleared, so batch deltas = cumulative counters *)
  let cache = Mae_prob.Kernel_cache.stats () in
  Alcotest.(check int) "cache hits via registry" cache.hits
    (counter "mae_kernel_cache_hits_total");
  Alcotest.(check int) "cache misses via registry" cache.misses
    (counter "mae_kernel_cache_misses_total");
  Alcotest.(check int) "engine stats cache hits" cache.hits
    stats.Mae_engine.cache_hits;
  Alcotest.(check int) "per-domain counts sum to modules"
    stats.Mae_engine.modules
    (Array.fold_left ( + ) 0 stats.Mae_engine.per_domain);
  Alcotest.(check bool) "races never exceed misses" true
    (cache.races <= cache.misses)

(* --- telemetry must never change an estimate --- *)

let bits = Int64.bits_of_float

let digest results =
  List.map
    (function
      | Ok (r : Mae.Driver.module_report) ->
          ( r.circuit.Mae_netlist.Circuit.name,
            List.concat_map
              (fun (mr : Mae.Driver.method_result) ->
                match mr.outcome with
                | Ok outcome ->
                    let d = Mae.Methodology.dims outcome in
                    List.map bits [ d.area; d.height; d.width ]
                | Error _ -> [])
              r.results
            @ List.map
                (fun (s : Mae.Estimate.stdcell) -> bits s.area)
                (Mae.Driver.stdcell_sweep r) )
      | Error e -> (Format.asprintf "%a" Mae_engine.pp_error e, []))
    results

let test_disabled_identical () =
  let batch = random_batch 12 in
  (* same registered instrument the engine observes into *)
  let module_latency = Metrics.histogram "mae_engine_module_seconds" in
  Obs.set_enabled false;
  let count_before_off = Metrics.histogram_count module_latency in
  let off = Mae_engine.run_circuits ~jobs:2 ~registry batch in
  Alcotest.(check int)
    "telemetry off records no per-module latency" count_before_off
    (Metrics.histogram_count module_latency);
  let count_before_on = Metrics.histogram_count module_latency in
  let on =
    Obs.with_enabled true (fun () ->
        Mae_engine.run_circuits ~jobs:2 ~registry batch)
  in
  Alcotest.(check int)
    "telemetry on records one observation per module"
    (count_before_on + List.length batch)
    (Metrics.histogram_count module_latency);
  Span.reset ();
  Alcotest.(check (list (pair string (list int64))))
    "telemetry on/off bit-for-bit" (digest off) (digest on)

(* --- flame summary with zero-duration spans --- *)

let test_flame_zero_duration () =
  Obs.with_enabled true @@ fun () ->
  Span.reset ();
  (* empty bodies: durations at or below clock resolution, several
     exactly 0.0 -- the summary must not divide by a zero grand total
     or print nan/inf *)
  for _ = 1 to 50 do
    Span.with_ ~name:"instant" (fun () -> ())
  done;
  let rows = Mae_obs.Trace.flame () in
  Alcotest.(check int) "one aggregated row" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check int) "all calls counted" 50 r.Mae_obs.Trace.calls;
  Alcotest.(check bool) "self time finite and >= 0" true
    (Float.is_finite r.Mae_obs.Trace.self_s && r.Mae_obs.Trace.self_s >= 0.);
  let summary = Mae_obs.Trace.flame_summary () in
  Alcotest.(check bool) "summary non-empty" true (String.length summary > 0);
  let lower = String.lowercase_ascii summary in
  let contains needle =
    let n = String.length needle and m = String.length lower in
    let rec at i = i + n <= m && (String.equal (String.sub lower i n) needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "no nan in summary" false (contains "nan");
  Alcotest.(check bool) "no inf in summary" false (contains "inf");
  Span.reset ()

(* --- histogram observations at 0, huge, and negative values --- *)

let test_histogram_extremes () =
  let h =
    Metrics.histogram "test_obs_extreme_seconds" ~buckets:[| 0.001; 1. |]
  in
  List.iter (Metrics.observe h) [ 0.; 1e308; -5.; Float.min_float ];
  Alcotest.(check int) "every observation counted" 4
    (Metrics.histogram_count h);
  Alcotest.(check (float 1e292)) "sum is the plain total" (1e308 -. 5.)
    (Metrics.histogram_sum h);
  (* 0, -5 and min_float land in the first bucket, 1e308 only in +Inf;
     the exposition must stay parseable and cumulative-monotone *)
  let prom = Metrics.to_prometheus () in
  let bucket le =
    let needle =
      Printf.sprintf "test_obs_extreme_seconds_bucket{le=\"%s\"} " le
    in
    let n = String.length needle in
    String.split_on_char '\n' prom
    |> List.find_map (fun line ->
           if String.length line > n && String.equal (String.sub line 0 n) needle
           then float_of_string_opt (String.sub line n (String.length line - n))
           else None)
    |> function
    | Some v -> v
    | None -> Alcotest.failf "bucket le=%s missing" le
  in
  Alcotest.(check (float 0.)) "first bucket holds 0/negative/min_float" 3.
    (bucket "0.001");
  Alcotest.(check (float 0.)) "middle bucket cumulative" 3. (bucket "1");
  Alcotest.(check (float 0.)) "+Inf bucket = count" 4. (bucket "+Inf");
  match Json.parse (Metrics.to_json ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics JSON with extreme sums: %s" e

(* --- Log: JSON-lines escaping, levels, request ids, disabled no-op --- *)

module Log = Mae_obs.Log

let read_log path =
  In_channel.with_open_text path In_channel.input_lines
  |> List.map (fun line ->
         match Json.parse line with
         | Ok doc -> doc
         | Error e -> Alcotest.failf "log line not JSON (%s): %S" e line)

let test_log_escaping () =
  let path = "test_obs_log.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  (match Log.set_sink_file path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sink: %s" e);
  Log.set_threshold (Some Log.Info);
  let tricky = "ctl\x01\x1f tab\t nl\n quote\" backslash\\ crlf\r\n" in
  Log.info ~event:"test.escape"
    [
      ("s", Log.Str tricky);
      ("i", Log.Int (-42));
      ("f", Log.Float 2.5);
      ("b", Log.Bool true);
    ];
  Log.with_request_id "r99" (fun () ->
      Log.warn ~event:"test.scoped" [ ("k", Log.Str "v") ]);
  (* below threshold: dropped *)
  Log.debug ~event:"test.dropped" [];
  Log.set_threshold None;
  (* disabled: dropped even at Error *)
  Log.error ~event:"test.disabled" [];
  Log.close ();
  let records = read_log path in
  Alcotest.(check int) "two records survive the threshold" 2
    (List.length records);
  let first = List.nth records 0 in
  (match Json.member "s" first with
  | Some (Json.String s) ->
      Alcotest.(check string) "control chars and quotes round-trip" tricky s
  | _ -> Alcotest.fail "field s missing");
  Alcotest.(check bool) "level recorded" true
    (Json.member "level" first = Some (Json.String "info"));
  Alcotest.(check bool) "int field" true
    (Option.bind (Json.member "i" first) Json.to_number = Some (-42.));
  Alcotest.(check bool) "bool field" true
    (Json.member "b" first = Some (Json.Bool true));
  Alcotest.(check bool) "unscoped record has no request_id" true
    (Json.member "request_id" first = None);
  let second = List.nth records 1 in
  Alcotest.(check bool) "request id scoped" true
    (Json.member "request_id" second = Some (Json.String "r99"));
  Alcotest.(check bool) "request id restored" true
    (Log.current_request_id () = None);
  Sys.remove path

let test_log_levels () =
  Alcotest.(check bool) "off by default here" false (Log.enabled Log.Error);
  Log.set_threshold (Some Log.Warn);
  Alcotest.(check bool) "warn on at warn" true (Log.enabled Log.Warn);
  Alcotest.(check bool) "error on at warn" true (Log.enabled Log.Error);
  Alcotest.(check bool) "info off at warn" false (Log.enabled Log.Info);
  Alcotest.(check bool) "threshold readable" true
    (Log.current_threshold () = Some Log.Warn);
  Log.set_threshold None;
  List.iter
    (fun (s, l) -> Alcotest.(check bool) s true (Log.level_of_string s = l))
    [
      ("debug", Some Log.Debug);
      ("info", Some Log.Info);
      ("warn", Some Log.Warn);
      ("warning", Some Log.Warn);
      ("error", Some Log.Error);
      ("verbose", None);
    ]

let () =
  Alcotest.run "obs"
    [
      ("json", [ Alcotest.test_case "parser + escape" `Quick test_json_parser ]);
      ( "spans",
        [
          Alcotest.test_case "recording, nesting, self time" `Quick
            test_span_recording;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_span_disabled_noop;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome export jobs:1" `Quick test_trace_seq;
          Alcotest.test_case "chrome export jobs:4" `Quick test_trace_par;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry semantics" `Quick test_metrics_registry;
          Alcotest.test_case "prometheus + json dumps" `Quick
            test_prometheus_format;
          Alcotest.test_case "counters match engine totals" `Quick
            test_metrics_match_engine;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "flame summary with zero-duration spans" `Quick
            test_flame_zero_duration;
          Alcotest.test_case "histogram at 0 / huge / negative" `Quick
            test_histogram_extremes;
        ] );
      ( "log",
        [
          Alcotest.test_case "escaping + request ids round-trip" `Quick
            test_log_escaping;
          Alcotest.test_case "levels and thresholds" `Quick test_log_levels;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "telemetry never changes estimates" `Quick
            test_disabled_identical;
        ] );
    ]
