(* The observability layer: span recording and nesting, Chrome trace
   export well-formedness, metrics registry correctness, and the
   guarantee that telemetry never changes an estimate. *)

module Obs = Mae_obs
module Span = Mae_obs.Span
module Metrics = Mae_obs.Metrics
module Json = Mae_obs.Json

let registry = Mae_tech.Registry.create ()

let random_batch ?(first_seed = 4000) n =
  List.init n (fun i ->
      Mae_workload.Random_circuit.generate
        ~name:(Printf.sprintf "obs%02d" i)
        ~rng:(Mae_prob.Rng.create ~seed:(first_seed + i))
        {
          Mae_workload.Random_circuit.default_params with
          devices = 20 + (i mod 5) * 10;
        })

(* --- Json --- *)

let test_json_parser () =
  let ok s = match Json.parse s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error _ -> ()
  in
  (match ok {|{"a": [1, 2.5, -3e2], "b": "x\n\"yé", "c": {"t": true, "n": null}}|} with
  | Json.Object fields ->
      Alcotest.(check int) "three members" 3 (List.length fields);
      (match List.assoc "a" fields with
      | Json.Array [ Json.Number a; Json.Number b; Json.Number c ] ->
          Alcotest.(check (float 1e-9)) "1" 1. a;
          Alcotest.(check (float 1e-9)) "2.5" 2.5 b;
          Alcotest.(check (float 1e-9)) "-300" (-300.) c
      | _ -> Alcotest.fail "array member")
  | _ -> Alcotest.fail "object expected");
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "[1] trailing";
  bad "\"unterminated";
  bad "nul";
  (* escape/parse round trip *)
  let tricky = "a\"b\\c\nd\te\r\x01" in
  match Json.parse (Json.escape tricky) with
  | Ok (Json.String s) -> Alcotest.(check string) "round trip" tricky s
  | _ -> Alcotest.fail "escape round trip"

(* --- spans --- *)

let test_span_recording () =
  Obs.with_enabled true @@ fun () ->
  Span.reset ();
  Span.with_ ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
      Span.with_ ~name:"inner" (fun () -> ignore (Sys.opaque_identity 1));
      Span.with_ ~name:"inner" (fun () -> ignore (Sys.opaque_identity 2)));
  (match Span.with_ ~name:"boom" (fun () -> raise Exit) with
  | () -> Alcotest.fail "Exit expected"
  | exception Exit -> ());
  let events = Span.events () in
  Alcotest.(check int) "four spans" 4 (List.length events);
  let outer =
    List.find (fun (e : Span.event) -> String.equal e.name "outer") events
  in
  let inners =
    List.filter (fun (e : Span.event) -> String.equal e.name "inner") events
  in
  Alcotest.(check int) "outer at depth 0" 0 outer.depth;
  List.iter
    (fun (i : Span.event) ->
      Alcotest.(check int) "inner at depth 1" 1 i.depth;
      Alcotest.(check bool) "inner within outer" true
        (i.ts >= outer.ts && i.ts +. i.dur <= outer.ts +. outer.dur +. 1e-6))
    inners;
  let child_time =
    List.fold_left (fun acc (i : Span.event) -> acc +. i.dur) 0. inners
  in
  Alcotest.(check (float 1e-6))
    "outer self = dur - children" (outer.dur -. child_time) outer.self;
  Alcotest.(check bool) "exception span still recorded" true
    (List.exists (fun (e : Span.event) -> String.equal e.name "boom") events);
  Span.reset ();
  Alcotest.(check int) "reset drops spans" 0 (List.length (Span.events ()))

let test_span_disabled_noop () =
  Obs.set_enabled false;
  Span.reset ();
  Span.with_ ~name:"invisible" (fun () -> ());
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.events ()))

(* --- trace export: well-formed JSON, nested non-overlapping lanes --- *)

let x_events trace =
  match Option.bind (Json.member "traceEvents" trace) Json.to_list with
  | None -> Alcotest.fail "traceEvents missing"
  | Some l ->
      List.filter
        (fun e ->
          match Option.bind (Json.member "ph" e) Json.to_string with
          | Some "X" -> true
          | _ -> false)
        l

let num name e =
  match Option.bind (Json.member name e) Json.to_number with
  | Some f -> f
  | None -> Alcotest.failf "X event lacks numeric %s" name

(* stack discipline per lane (tid): strictly nested or disjoint *)
let check_nesting events =
  let lanes = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let tid = int_of_float (num "tid" e) in
      let prev = Option.value (Hashtbl.find_opt lanes tid) ~default:[] in
      Hashtbl.replace lanes tid ((num "ts" e, num "dur" e) :: prev))
    events;
  Hashtbl.iter
    (fun tid spans ->
      let spans =
        List.sort
          (fun (t1, d1) (t2, d2) ->
            match Float.compare t1 t2 with
            | 0 -> Float.compare d2 d1
            | c -> c)
          spans
      in
      let tolerance = 1.0 (* µs *) in
      let stack = ref [] in
      List.iter
        (fun (ts, dur) ->
          let rec unwind () =
            match !stack with
            | (pts, pdur) :: rest when ts >= pts +. pdur -. tolerance ->
                stack := rest;
                unwind ()
            | _ -> ()
          in
          unwind ();
          (match !stack with
          | (pts, pdur) :: _ ->
              if ts +. dur > pts +. pdur +. tolerance then
                Alcotest.failf
                  "lane %d: span [%f, +%f] partially overlaps [%f, +%f]" tid ts
                  dur pts pdur
          | [] -> ());
          stack := (ts, dur) :: !stack)
        spans)
    lanes

let trace_roundtrip ~jobs () =
  Obs.with_enabled true @@ fun () ->
  Span.reset ();
  let batch = random_batch 10 in
  let results = Mae_engine.run_circuits ~jobs ~registry batch in
  Alcotest.(check int) "batch ran" 10 (List.length results);
  let trace =
    match Json.parse (Mae_obs.Trace.to_chrome_string ()) with
    | Ok t -> t
    | Error e -> Alcotest.failf "trace JSON: %s" e
  in
  let events = x_events trace in
  let names =
    List.filter_map (fun e -> Option.bind (Json.member "name" e) Json.to_string) events
  in
  let count name = List.length (List.filter (String.equal name) names) in
  (* one span per Figure-1 stage per module, one module parent each;
     estimators run under per-methodology method.<name> spans *)
  List.iter
    (fun stage -> Alcotest.(check int) stage 10 (count stage))
    [
      "driver.module"; "driver.validate"; "driver.expand"; "driver.stats";
      "method.stdcell"; "method.fullcustom-exact"; "method.fullcustom-average";
    ];
  Alcotest.(check int) "one batch span" 1 (count "engine.batch");
  check_nesting events;
  Span.reset ()

let test_trace_seq () = trace_roundtrip ~jobs:1 ()
let test_trace_par () = trace_roundtrip ~jobs:4 ()

(* --- metrics --- *)

let test_metrics_registry () =
  let c = Metrics.counter "mae_test_obs_counter_total" in
  let c' = Metrics.counter "mae_test_obs_counter_total" in
  Metrics.reset_counter c;
  Metrics.incr c;
  Metrics.add c' 4;
  Alcotest.(check int) "idempotent registration shares state" 5
    (Metrics.counter_value c);
  (match Metrics.gauge "mae_test_obs_counter_total" with
  | _ -> Alcotest.fail "kind clash must raise"
  | exception Invalid_argument _ -> ());
  (match Metrics.counter "bad name!" with
  | _ -> Alcotest.fail "invalid name must raise"
  | exception Invalid_argument _ -> ());
  let g = Metrics.gauge "mae_test_obs_gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.)) "gauge set/get" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram "mae_test_obs_hist_seconds" ~buckets:[| 0.1; 1.; 10. |] in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 0.5; 5.; 50. ];
  Alcotest.(check int) "histogram count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "histogram sum" 56.05 (Metrics.histogram_sum h)

let test_prometheus_format () =
  let prom = Metrics.to_prometheus () in
  Alcotest.(check bool) "non-empty" true (String.length prom > 0);
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         if String.length line > 0 && not (Char.equal line.[0] '#') then
           match String.split_on_char ' ' line with
           | [ name; value ] ->
               Alcotest.(check bool)
                 (Printf.sprintf "parseable value in %S" line)
                 true
                 (Option.is_some (float_of_string_opt value));
               Alcotest.(check bool)
                 (Printf.sprintf "non-empty name in %S" line)
                 true (String.length name > 0)
           | _ -> Alcotest.failf "malformed line %S" line);
  (* cumulative histogram buckets must be monotone *)
  let last = Hashtbl.create 8 in
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         match String.index_opt line '{' with
         | Some i
           when String.length line > 7
                && String.equal (String.sub line (i - 7) 7) "_bucket" -> begin
             let name = String.sub line 0 i in
             match String.rindex_opt line ' ' with
             | Some sp ->
                 let v =
                   float_of_string
                     (String.sub line (sp + 1) (String.length line - sp - 1))
                 in
                 let prev = Option.value (Hashtbl.find_opt last name) ~default:0. in
                 Alcotest.(check bool)
                   (Printf.sprintf "monotone buckets for %s" name)
                   true (v >= prev);
                 Hashtbl.replace last name v
             | None -> ()
           end
         | _ -> ());
  match Json.parse (Metrics.to_json ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics JSON dump: %s" e

let test_metrics_match_engine () =
  Mae_prob.Kernel_cache.clear ();
  let counter name =
    match Metrics.find_counter name with
    | Some c -> Metrics.counter_value c
    | None -> Alcotest.failf "counter %s not registered" name
  in
  let modules_before = counter "mae_engine_modules_total" in
  let ok_before = counter "mae_engine_modules_ok_total" in
  let batch = random_batch 8 in
  let results, stats = Mae_engine.run_circuits_with_stats ~jobs:2 ~registry batch in
  Alcotest.(check int) "modules counter delta" stats.Mae_engine.modules
    (counter "mae_engine_modules_total" - modules_before);
  Alcotest.(check int) "ok counter delta" stats.Mae_engine.ok
    (counter "mae_engine_modules_ok_total" - ok_before);
  Alcotest.(check int) "ok = Ok slots"
    (List.length (List.filter Result.is_ok results))
    stats.Mae_engine.ok;
  (* the cache was cleared, so batch deltas = cumulative counters *)
  let cache = Mae_prob.Kernel_cache.stats () in
  Alcotest.(check int) "cache hits via registry" cache.hits
    (counter "mae_kernel_cache_hits_total");
  Alcotest.(check int) "cache misses via registry" cache.misses
    (counter "mae_kernel_cache_misses_total");
  Alcotest.(check int) "engine stats cache hits" cache.hits
    stats.Mae_engine.cache_hits;
  Alcotest.(check int) "per-domain counts sum to modules"
    stats.Mae_engine.modules
    (Array.fold_left ( + ) 0 stats.Mae_engine.per_domain);
  Alcotest.(check bool) "races never exceed misses" true
    (cache.races <= cache.misses)

(* --- telemetry must never change an estimate --- *)

let bits = Int64.bits_of_float

let digest results =
  List.map
    (function
      | Ok (r : Mae.Driver.module_report) ->
          ( r.circuit.Mae_netlist.Circuit.name,
            List.concat_map
              (fun (mr : Mae.Driver.method_result) ->
                match mr.outcome with
                | Ok outcome ->
                    let d = Mae.Methodology.dims outcome in
                    List.map bits [ d.area; d.height; d.width ]
                | Error _ -> [])
              r.results
            @ List.map
                (fun (s : Mae.Estimate.stdcell) -> bits s.area)
                (Mae.Driver.stdcell_sweep r) )
      | Error e -> (Format.asprintf "%a" Mae_engine.pp_error e, []))
    results

let test_disabled_identical () =
  let batch = random_batch 12 in
  (* same registered instruments the engine observes into *)
  let module_latency = Metrics.histogram "mae_engine_module_seconds" in
  let module_sketch = Mae_obs.Sketch.create "mae_engine_module_seconds_summary" in
  let sketch_count () = (Mae_obs.Sketch.snapshot module_sketch).Mae_obs.Sketch.n in
  Obs.set_enabled false;
  let count_before_off = Metrics.histogram_count module_latency in
  let sketch_before_off = sketch_count () in
  let off = Mae_engine.run_circuits ~jobs:2 ~registry batch in
  Alcotest.(check int)
    "telemetry off records no per-module latency" count_before_off
    (Metrics.histogram_count module_latency);
  Alcotest.(check int)
    "telemetry off records no sketch samples" sketch_before_off
    (sketch_count ());
  let count_before_on = Metrics.histogram_count module_latency in
  let sketch_before_on = sketch_count () in
  let on =
    Obs.with_enabled true (fun () ->
        Mae_engine.run_circuits ~jobs:2 ~registry batch)
  in
  Alcotest.(check int)
    "telemetry on records one observation per module"
    (count_before_on + List.length batch)
    (Metrics.histogram_count module_latency);
  Alcotest.(check int)
    "telemetry on records one sketch sample per module"
    (sketch_before_on + List.length batch)
    (sketch_count ());
  Span.reset ();
  Alcotest.(check (list (pair string (list int64))))
    "telemetry on/off bit-for-bit" (digest off) (digest on)

(* --- flame summary with zero-duration spans --- *)

let test_flame_zero_duration () =
  Obs.with_enabled true @@ fun () ->
  Span.reset ();
  (* empty bodies: durations at or below clock resolution, several
     exactly 0.0 -- the summary must not divide by a zero grand total
     or print nan/inf *)
  for _ = 1 to 50 do
    Span.with_ ~name:"instant" (fun () -> ())
  done;
  let rows = Mae_obs.Trace.flame () in
  Alcotest.(check int) "one aggregated row" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check int) "all calls counted" 50 r.Mae_obs.Trace.calls;
  Alcotest.(check bool) "self time finite and >= 0" true
    (Float.is_finite r.Mae_obs.Trace.self_s && r.Mae_obs.Trace.self_s >= 0.);
  let summary = Mae_obs.Trace.flame_summary () in
  Alcotest.(check bool) "summary non-empty" true (String.length summary > 0);
  let lower = String.lowercase_ascii summary in
  let contains needle =
    let n = String.length needle and m = String.length lower in
    let rec at i = i + n <= m && (String.equal (String.sub lower i n) needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "no nan in summary" false (contains "nan");
  Alcotest.(check bool) "no inf in summary" false (contains "inf");
  Span.reset ()

(* --- histogram observations at 0, huge, and negative values --- *)

let test_histogram_extremes () =
  let h =
    Metrics.histogram "mae_test_obs_extreme_seconds" ~buckets:[| 0.001; 1. |]
  in
  List.iter (Metrics.observe h) [ 0.; 1e308; -5.; Float.min_float ];
  Alcotest.(check int) "every observation counted" 4
    (Metrics.histogram_count h);
  Alcotest.(check (float 1e292)) "sum is the plain total" (1e308 -. 5.)
    (Metrics.histogram_sum h);
  (* 0, -5 and min_float land in the first bucket, 1e308 only in +Inf;
     the exposition must stay parseable and cumulative-monotone *)
  let prom = Metrics.to_prometheus () in
  let bucket le =
    let needle =
      Printf.sprintf "mae_test_obs_extreme_seconds_bucket{le=\"%s\"} " le
    in
    let n = String.length needle in
    String.split_on_char '\n' prom
    |> List.find_map (fun line ->
           if String.length line > n && String.equal (String.sub line 0 n) needle
           then float_of_string_opt (String.sub line n (String.length line - n))
           else None)
    |> function
    | Some v -> v
    | None -> Alcotest.failf "bucket le=%s missing" le
  in
  Alcotest.(check (float 0.)) "first bucket holds 0/negative/min_float" 3.
    (bucket "0.001");
  Alcotest.(check (float 0.)) "middle bucket cumulative" 3. (bucket "1");
  Alcotest.(check (float 0.)) "+Inf bucket = count" 4. (bucket "+Inf");
  match Json.parse (Metrics.to_json ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics JSON with extreme sums: %s" e

(* --- Log: JSON-lines escaping, levels, request ids, disabled no-op --- *)

module Log = Mae_obs.Log

let read_log path =
  In_channel.with_open_text path In_channel.input_lines
  |> List.map (fun line ->
         match Json.parse line with
         | Ok doc -> doc
         | Error e -> Alcotest.failf "log line not JSON (%s): %S" e line)

let test_log_escaping () =
  let path = "test_obs_log.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  (match Log.set_sink_file path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sink: %s" e);
  Log.set_threshold (Some Log.Info);
  let tricky = "ctl\x01\x1f tab\t nl\n quote\" backslash\\ crlf\r\n" in
  Log.info ~event:"test.escape"
    [
      ("s", Log.Str tricky);
      ("i", Log.Int (-42));
      ("f", Log.Float 2.5);
      ("b", Log.Bool true);
    ];
  Log.with_request_id "r99" (fun () ->
      Log.warn ~event:"test.scoped" [ ("k", Log.Str "v") ]);
  (* below threshold: dropped *)
  Log.debug ~event:"test.dropped" [];
  Log.set_threshold None;
  (* disabled: dropped even at Error *)
  Log.error ~event:"test.disabled" [];
  Log.close ();
  let records = read_log path in
  Alcotest.(check int) "two records survive the threshold" 2
    (List.length records);
  let first = List.nth records 0 in
  (match Json.member "s" first with
  | Some (Json.String s) ->
      Alcotest.(check string) "control chars and quotes round-trip" tricky s
  | _ -> Alcotest.fail "field s missing");
  Alcotest.(check bool) "level recorded" true
    (Json.member "level" first = Some (Json.String "info"));
  Alcotest.(check bool) "int field" true
    (Option.bind (Json.member "i" first) Json.to_number = Some (-42.));
  Alcotest.(check bool) "bool field" true
    (Json.member "b" first = Some (Json.Bool true));
  Alcotest.(check bool) "unscoped record has no request_id" true
    (Json.member "request_id" first = None);
  let second = List.nth records 1 in
  Alcotest.(check bool) "request id scoped" true
    (Json.member "request_id" second = Some (Json.String "r99"));
  Alcotest.(check bool) "request id restored" true
    (Log.current_request_id () = None);
  Sys.remove path

let test_log_levels () =
  Alcotest.(check bool) "off by default here" false (Log.enabled Log.Error);
  Log.set_threshold (Some Log.Warn);
  Alcotest.(check bool) "warn on at warn" true (Log.enabled Log.Warn);
  Alcotest.(check bool) "error on at warn" true (Log.enabled Log.Error);
  Alcotest.(check bool) "info off at warn" false (Log.enabled Log.Info);
  Alcotest.(check bool) "threshold readable" true
    (Log.current_threshold () = Some Log.Warn);
  Log.set_threshold None;
  List.iter
    (fun (s, l) -> Alcotest.(check bool) s true (Log.level_of_string s = l))
    [
      ("debug", Some Log.Debug);
      ("info", Some Log.Info);
      ("warn", Some Log.Warn);
      ("warning", Some Log.Warn);
      ("error", Some Log.Error);
      ("verbose", None);
    ]

(* --- Clock: monotonic timebase for span/latency timing --- *)

let test_clock_monotonic () =
  let a = Mae_obs.Clock.monotonic () in
  let b = Mae_obs.Clock.monotonic () in
  Alcotest.(check bool) "never goes backwards" true (b >= a);
  Alcotest.(check bool) "finite" true (Float.is_finite a);
  (* converting the current monotonic instant lands near current wall *)
  let wall_now = Mae_obs.Clock.wall () in
  let converted = Mae_obs.Clock.wall_of_monotonic (Mae_obs.Clock.monotonic ()) in
  Alcotest.(check bool) "wall_of_monotonic tracks wall clock" true
    (Float.abs (converted -. wall_now) < 60.)

(* --- Sketch: rank-error property against the exact sorted pool --- *)

(* deterministic pseudo-random stream, no global Random state *)
let lcg_stream seed n =
  let state = ref (Int64.of_int seed) in
  List.init n (fun _ ->
      state :=
        Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
      let bits = Int64.to_int (Int64.shift_right_logical !state 17) land 0xFFFFFF in
      float_of_int bits /. 1e3)

(* every queried quantile must land within the advertised rank-error
   bound of its target rank in the exact pooled sorted sample set *)
let assert_within_bound sk samples ~domains =
  let sorted = Array.of_list (List.sort Float.compare samples) in
  let n = Array.length sorted in
  let bound = Mae_obs.Sketch.rank_error_bound sk ~n ~domains in
  List.iter
    (fun q ->
      match Mae_obs.Sketch.quantile sk q with
      | None -> Alcotest.failf "quantile %g of %d samples: empty sketch" q n
      | Some v ->
          let below = ref 0 and at_or_below = ref 0 in
          Array.iter
            (fun x ->
              if x < v then incr below;
              if x <= v then incr at_or_below)
            sorted;
          let target = q *. float_of_int n in
          let dist =
            if target < float_of_int !below then float_of_int !below -. target
            else if target > float_of_int !at_or_below then
              target -. float_of_int !at_or_below
            else 0.
          in
          Alcotest.(check bool)
            (Printf.sprintf "q=%g: value %g rank error %.1f within bound %.1f"
               q v dist bound)
            true (dist <= bound))
    [ 0.; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 0.999; 1. ]

let test_sketch_streams () =
  let streams =
    [
      ("uniform", lcg_stream 42 20_000);
      ("sorted", List.init 20_000 float_of_int);
      ("reversed", List.init 20_000 (fun i -> float_of_int (20_000 - i)));
      ("constant", List.init 5_000 (fun _ -> 7.5));
      ( "two_spike",
        List.init 10_000 (fun i -> if i mod 2 = 0 then 1. else 1000.) );
    ]
  in
  List.iteri
    (fun i (label, samples) ->
      let sk =
        Mae_obs.Sketch.create
          (Printf.sprintf "mae_test_sketch_stream%d_seconds_summary" i)
          ~eps:0.01
      in
      Mae_obs.Sketch.reset sk;
      List.iter (Mae_obs.Sketch.observe sk) samples;
      assert_within_bound sk samples ~domains:1;
      let s = Mae_obs.Sketch.snapshot sk in
      Alcotest.(check int) (label ^ ": count") (List.length samples) s.n;
      Alcotest.(check (float 1e-6))
        (label ^ ": exact min")
        (List.fold_left Float.min Float.infinity samples)
        s.min_v;
      Alcotest.(check (float 1e-6))
        (label ^ ": exact max")
        (List.fold_left Float.max Float.neg_infinity samples)
        s.max_v;
      (* the point of a sketch: summary stays small however long the
         stream (GK: O((1/eps) log(eps n)) tuples) *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d tuples bounded" label s.tuples)
        true
        (s.tuples <= 2000))
    streams

let test_sketch_merged_domains () =
  let sk = Mae_obs.Sketch.create "mae_test_sketch_merged_seconds_summary" ~eps:0.01 in
  Mae_obs.Sketch.reset sk;
  let domains = 4 in
  let per_domain = 10_000 in
  let chunks =
    List.init domains (fun d -> lcg_stream (100 + d) per_domain)
  in
  (* concurrent hammer: four domains observe their chunks into the
     same sketch; per-domain buffers flush at domain exit *)
  let workers =
    List.map
      (fun chunk ->
        Domain.spawn (fun () ->
            List.iter (Mae_obs.Sketch.observe sk) chunk;
            Mae_obs.Sketch.flush_local ()))
      chunks
  in
  List.iter Domain.join workers;
  let pooled = List.concat chunks in
  let s = Mae_obs.Sketch.snapshot sk in
  Alcotest.(check int) "merged count" (domains * per_domain) s.n;
  assert_within_bound sk pooled ~domains

let test_sketch_registry () =
  let a = Mae_obs.Sketch.create "mae_test_sketch_reg_seconds_summary" ~eps:0.02 in
  let b = Mae_obs.Sketch.create "mae_test_sketch_reg_seconds_summary" in
  Alcotest.(check bool) "idempotent registration shares state" true (a == b);
  Alcotest.(check (float 0.)) "eps preserved" 0.02 (Mae_obs.Sketch.eps b);
  (match Mae_obs.Sketch.create "mae_test_sketch_reg_seconds_summary" ~eps:0.5 with
  | _ -> Alcotest.fail "conflicting eps must raise"
  | exception Invalid_argument _ -> ());
  (* same lint as Metrics: names outside mae_[a-z0-9_]+ are rejected *)
  List.iter
    (fun bad ->
      match Mae_obs.Sketch.create bad with
      | _ -> Alcotest.failf "bad sketch name %S must raise" bad
      | exception Invalid_argument _ -> ())
    [ "latency"; "mae_Upper_seconds"; "mae_sp ace"; "mae-dash" ];
  (* exemplars: the largest labelled observations survive *)
  Mae_obs.Sketch.reset a;
  Mae_obs.Sketch.observe_exemplar a ~label:"r1" 0.010;
  Mae_obs.Sketch.observe_exemplar a ~label:"r2" 5.0;
  Mae_obs.Sketch.observe_exemplar a ~label:"r3" 0.020;
  let s = Mae_obs.Sketch.snapshot a in
  (match s.exemplars with
  | (v, label, _) :: _ ->
      Alcotest.(check (float 0.)) "largest exemplar first" 5.0 v;
      Alcotest.(check string) "exemplar label" "r2" label
  | [] -> Alcotest.fail "exemplars missing");
  (* the exposition hook makes sketches ride along in every dump *)
  let prom = Metrics.to_prometheus () in
  let contains needle hay =
    let n = String.length needle and m = String.length hay in
    let rec at i =
      i + n <= m && (String.equal (String.sub hay i n) needle || at (i + 1))
    in
    at 0
  in
  Alcotest.(check bool) "summary in /metrics dump" true
    (contains "mae_test_sketch_reg_seconds_summary{quantile=" prom);
  Alcotest.(check bool) "exemplar comment in dump" true
    (contains "# EXEMPLAR mae_test_sketch_reg_seconds_summary" prom)

(* --- SLO burn-rate math and the /healthz trip condition --- *)

let test_slo_burn () =
  let sk =
    Mae_obs.Slo.register
      (Mae_obs.Slo.spec ~kind:(Mae_obs.Slo.Latency 0.1) ~target:0.9
         ~min_events:20 "mae_test_slo_latency")
  in
  Mae_obs.Slo.reset sk;
  (* 10 good, 10 bad: bad fraction 0.5 against a 0.1 budget = burn 5 *)
  for _ = 1 to 10 do
    Mae_obs.Slo.record_latency sk 0.01
  done;
  for _ = 1 to 10 do
    Mae_obs.Slo.record_latency sk 0.5
  done;
  let r = Mae_obs.Slo.report sk in
  Alcotest.(check int) "good" 10 r.fast.good;
  Alcotest.(check int) "bad" 10 r.fast.bad;
  Alcotest.(check (float 1e-9)) "bad fraction" 0.5 r.fast.bad_fraction;
  Alcotest.(check (float 1e-9)) "burn = fraction / budget" 5. r.fast.burn_rate;
  Alcotest.(check bool) "min_events reached + burn >= 1 trips" false
    r.r_healthy;
  (* same traffic below min_events stays healthy *)
  Mae_obs.Slo.reset sk;
  for _ = 1 to 9 do
    Mae_obs.Slo.record_latency sk 0.5
  done;
  Alcotest.(check bool) "burning but under min_events" true
    (Mae_obs.Slo.report sk).r_healthy;
  (* all-good traffic: burn 0, healthy *)
  Mae_obs.Slo.reset sk;
  for _ = 1 to 50 do
    Mae_obs.Slo.record_latency sk 0.01
  done;
  let r = Mae_obs.Slo.report sk in
  Alcotest.(check (float 0.)) "burn 0 when clean" 0. r.fast.burn_rate;
  Alcotest.(check bool) "healthy when clean" true r.r_healthy;
  let er =
    Mae_obs.Slo.register
      (Mae_obs.Slo.spec ~kind:Mae_obs.Slo.Error_rate ~target:0.999
         "mae_test_slo_errors")
  in
  Mae_obs.Slo.reset er;
  (match Mae_obs.Slo.record_latency er 0.1 with
  | () -> Alcotest.fail "record_latency on an error-rate SLO must raise"
  | exception Invalid_argument _ -> ());
  Mae_obs.Slo.record er ~good:true;
  Mae_obs.Slo.record er ~good:false;
  let r = Mae_obs.Slo.report er in
  Alcotest.(check (float 1e-6)) "error burn" (0.5 /. 0.001) r.fast.burn_rate;
  (* registration validation *)
  (match
     Mae_obs.Slo.register
       (Mae_obs.Slo.spec ~kind:Mae_obs.Slo.Error_rate ~target:1.5
          "mae_test_slo_badtarget")
   with
  | _ -> Alcotest.fail "target outside (0,1) must raise"
  | exception Invalid_argument _ -> ());
  match
    Mae_obs.Slo.register
      (Mae_obs.Slo.spec ~kind:Mae_obs.Slo.Error_rate "not a metric name")
  with
  | _ -> Alcotest.fail "bad SLO name must raise"
  | exception Invalid_argument _ -> ()

(* --- tail-based capture: bounded retention, errored always kept --- *)

let test_capture_retention () =
  Mae_obs.Capture.configure ~slow_k:4 ~errored_cap:8 ~max_spans:16 ();
  Obs.with_enabled true @@ fun () ->
  Span.reset ();
  (* sustained load: 200 ok requests with span trees, a few errored *)
  for i = 1 to 200 do
    let since = Mae_obs.Clock.monotonic () in
    Span.with_ ~name:"req.work" (fun () -> ignore (Sys.opaque_identity i));
    let ok = i mod 50 <> 0 in
    Mae_obs.Capture.record
      ~rid:(Printf.sprintf "r%d" i)
      ~ok
      ?error:(if ok then None else Some "boom")
      ~latency:(float_of_int i *. 1e-4)
      ~since ()
  done;
  let caps = Mae_obs.Capture.captures () in
  let errored =
    List.filter (fun c -> c.Mae_obs.Capture.cap_kind = `Errored) caps
  in
  let slow =
    List.filter (fun c -> c.Mae_obs.Capture.cap_kind = `Slow) caps
  in
  (* every errored request (4 of 200) retained, none evicted at cap 8 *)
  Alcotest.(check (list string))
    "all errored requests retained, newest first"
    [ "r200"; "r150"; "r100"; "r50" ]
    (List.map (fun c -> c.Mae_obs.Capture.cap_rid) errored);
  Alcotest.(check bool)
    (Printf.sprintf "slow captures bounded (%d <= 2k)" (List.length slow))
    true
    (List.length slow <= 2 * 4);
  (* the slowest retained slow capture is the slowest ok request *)
  (match slow with
  | c :: _ ->
      Alcotest.(check string) "slowest ok request captured" "r199"
        c.Mae_obs.Capture.cap_rid
  | [] -> Alcotest.fail "no slow captures");
  Alcotest.(check bool)
    (Printf.sprintf "resident %d within bound %d"
       (Mae_obs.Capture.resident_spans ())
       (Mae_obs.Capture.max_resident_spans ()))
    true
    (Mae_obs.Capture.resident_spans () <= Mae_obs.Capture.max_resident_spans ());
  (* FIFO eviction: overflow the errored ring, oldest drop off *)
  for i = 201 to 220 do
    let since = Mae_obs.Clock.monotonic () in
    Mae_obs.Capture.record
      ~rid:(Printf.sprintf "r%d" i)
      ~ok:false ~error:"boom" ~latency:1e-4 ~since ()
  done;
  let errored =
    List.filter
      (fun c -> c.Mae_obs.Capture.cap_kind = `Errored)
      (Mae_obs.Capture.captures ())
  in
  Alcotest.(check int) "errored ring capped" 8 (List.length errored);
  Alcotest.(check string) "newest errored kept" "r220"
    (List.hd errored).Mae_obs.Capture.cap_rid;
  Mae_obs.Capture.configure ();
  Span.reset ()

let () =
  Alcotest.run "obs"
    [
      ("json", [ Alcotest.test_case "parser + escape" `Quick test_json_parser ]);
      ( "spans",
        [
          Alcotest.test_case "recording, nesting, self time" `Quick
            test_span_recording;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_span_disabled_noop;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome export jobs:1" `Quick test_trace_seq;
          Alcotest.test_case "chrome export jobs:4" `Quick test_trace_par;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry semantics" `Quick test_metrics_registry;
          Alcotest.test_case "prometheus + json dumps" `Quick
            test_prometheus_format;
          Alcotest.test_case "counters match engine totals" `Quick
            test_metrics_match_engine;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "flame summary with zero-duration spans" `Quick
            test_flame_zero_duration;
          Alcotest.test_case "histogram at 0 / huge / negative" `Quick
            test_histogram_extremes;
        ] );
      ( "log",
        [
          Alcotest.test_case "escaping + request ids round-trip" `Quick
            test_log_escaping;
          Alcotest.test_case "levels and thresholds" `Quick test_log_levels;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic timebase" `Quick test_clock_monotonic ]
      );
      ( "sketch",
        [
          Alcotest.test_case "rank bound on adversarial streams" `Quick
            test_sketch_streams;
          Alcotest.test_case "4-domain concurrent merge" `Quick
            test_sketch_merged_domains;
          Alcotest.test_case "registry, lint, exemplars" `Quick
            test_sketch_registry;
        ] );
      ( "slo",
        [ Alcotest.test_case "burn rates and healthy trip" `Quick test_slo_burn ]
      );
      ( "capture",
        [
          Alcotest.test_case "bounded tail retention" `Quick
            test_capture_retention;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "telemetry never changes estimates" `Quick
            test_disabled_identical;
        ] );
    ]
