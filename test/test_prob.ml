open Mae_prob
module S = Mae_test_support.Support

(* Comb *)

let test_log_factorial () =
  S.check_float "0!" 0. (Comb.log_factorial 0);
  S.check_float "1!" 0. (Comb.log_factorial 1);
  S.check_float "5!" (Float.log 120.) (Comb.log_factorial 5);
  (* table/Stirling boundary continuity *)
  S.check_close ~rel:1e-8 "large n"
    (Comb.log_factorial 4095 +. Float.log 4096.)
    (Comb.log_factorial 4096);
  S.raises_invalid (fun () -> Comb.log_factorial (-1))

let test_choose () =
  S.check_float "C(5,2)" 10. (Comb.choose 5 2);
  S.check_float "C(10,0)" 1. (Comb.choose 10 0);
  S.check_float "C(10,10)" 1. (Comb.choose 10 10);
  S.check_float "C(4,7)=0" 0. (Comb.choose 4 7);
  S.check_float "C(4,-1)=0" 0. (Comb.choose 4 (-1));
  S.check_close ~rel:1e-9 "C(60,30) via logs" 1.18264581564861424e17
    (Comb.choose 60 30)

(* Regression: the old [choose] switched to exp/log at n = 31 even
   though 63-bit ints hold every C(n, k) up to n = 64 exactly, so
   C(31, 15) came back 300540194.99999994.  It must be exact now, and
   the exact-to-logarithmic hand-off (wherever it lands) must be
   continuous under Pascal's rule. *)
let test_choose_exact_through_word_size () =
  S.check_float ~eps:0. "C(31,15)" 300540195. (Comb.choose 31 15);
  S.check_float ~eps:0. "C(32,16)" 601080390. (Comb.choose 32 16);
  S.check_float ~eps:0. "C(33,16)" 1166803110. (Comb.choose 33 16);
  (* every value that fits an OCaml int is exact, right across the old
     n = 30/31 cliff *)
  for n = 28 to 60 do
    let k = n / 2 in
    S.check_float ~eps:0.
      (Printf.sprintf "C(%d,%d) exact" n k)
      (Float.of_int (Comb.choose_int n k))
      (Comb.choose n k)
  done;
  (* Pascal continuity across the exact-to-log switch: C(65,k) mixes
     exact C(64,.) operands with a possibly-logarithmic result *)
  for n = 64 to 66 do
    S.check_close ~rel:1e-12
      (Printf.sprintf "pascal at n=%d" n)
      (Comb.choose (n - 1) 31 +. Comb.choose (n - 1) 32)
      (Comb.choose n 32)
  done;
  (* and across the log_factorial table/Stirling switch at 4096 *)
  for n = 4095 to 4097 do
    S.check_close ~rel:1e-9
      (Printf.sprintf "pascal at n=%d" n)
      (Comb.choose (n - 1) 99 +. Comb.choose (n - 1) 100)
      (Comb.choose n 100)
  done

let test_choose_int () =
  Alcotest.(check int) "C(10,3)" 120 (Comb.choose_int 10 3);
  Alcotest.(check int) "C(52,5)" 2598960 (Comb.choose_int 52 5);
  Alcotest.(check int) "out of range" 0 (Comb.choose_int 3 5)

let test_surjections () =
  S.check_float "surj(3,1)" 1. (Comb.surjections 3 1);
  S.check_float "surj(3,2)" 6. (Comb.surjections 3 2);
  S.check_float "surj(3,3)" 6. (Comb.surjections 3 3);
  S.check_float "surj(2,3)" 0. (Comb.surjections 2 3);
  S.check_float "surj(0,0)" 1. (Comb.surjections 0 0);
  S.check_float "surj(4,2)" 14. (Comb.surjections 4 2)

let test_paper_b_matches_surjections () =
  for k = 1 to 8 do
    for i = 1 to k do
      S.check_close ~rel:1e-9
        (Printf.sprintf "b_%d(%d)" k i)
        (Comb.surjections k i)
        (Comb.paper_b ~k i)
    done
  done

let test_float_pow () =
  S.check_float "x^0" 1. (Comb.float_pow 3. 0);
  S.check_float "2^10" 1024. (Comb.float_pow 2. 10);
  S.check_float "0.5^3" 0.125 (Comb.float_pow 0.5 3);
  S.raises_invalid (fun () -> Comb.float_pow 2. (-1))

(* The table behind [log_factorial] is built eagerly at module init, so
   hammering it from several domains at once must neither crash (the old
   [lazy] table could raise [Lazy.Undefined] under a forcing race) nor
   return anything but the values the main domain sees. *)
let test_log_factorial_domains () =
  let expected = Array.init 5000 Comb.log_factorial in
  let hammer () =
    let ok = ref true in
    for _pass = 1 to 50 do
      for n = 0 to Array.length expected - 1 do
        if not (Float.equal (Comb.log_factorial n) expected.(n)) then
          ok := false
      done
    done;
    !ok
  in
  let domains = List.init 4 (fun _ -> Domain.spawn hammer) in
  List.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d sees the shared table" i)
        true (Domain.join d))
    domains

(* Kernel_cache: a cache hit must be indistinguishable from a fresh
   computation, for every kernel and across the whole (rows, degree)
   plane the estimators touch. *)

let same_dist name a b =
  Alcotest.(check (list int))
    (name ^ " support") (Dist.support a) (Dist.support b);
  List.iter
    (fun o ->
      S.check_float (Printf.sprintf "%s p(%d)" name o) (Dist.prob a o)
        (Dist.prob b o))
    (Dist.support a);
  S.check_float (name ^ " expectation") (Dist.expectation a)
    (Dist.expectation b);
  Alcotest.(check bool)
    (name ^ " mass ~ 1") true
    (Dist.total_mass_error b < 1e-9)

let test_kernel_cache_matches_fresh () =
  Kernel_cache.clear ();
  Alcotest.(check bool) "cache enabled" true (Kernel_cache.enabled ());
  List.iter
    (fun (model, mname) ->
      for rows = 1 to 12 do
        for degree = 2 to 16 do
          let name = Printf.sprintf "%s span n=%d D=%d" mname rows degree in
          let fresh =
            Kernel_cache.row_span_dist_uncached ~model ~rows ~degree
          in
          (* first call fills the table, second call must hit it *)
          let filled = Kernel_cache.row_span_dist ~model ~rows ~degree in
          let hit = Kernel_cache.row_span_dist ~model ~rows ~degree in
          same_dist name fresh filled;
          same_dist (name ^ " (hit)") fresh hit;
          Alcotest.(check int)
            (name ^ " E(i)")
            (Dist.expectation_ceil fresh)
            (Kernel_cache.expected_span ~model ~rows ~degree)
        done
      done)
    [ (Kernel_cache.Paper, "paper"); (Kernel_cache.Exact, "exact") ];
  List.iter
    (fun net_count ->
      for rows = 1 to 12 do
        let name = Printf.sprintf "feed nets=%d n=%d" net_count rows in
        let fresh = Kernel_cache.feed_through_dist_uncached ~net_count ~rows in
        let filled = Kernel_cache.feed_through_dist ~net_count ~rows in
        let hit = Kernel_cache.feed_through_dist ~net_count ~rows in
        same_dist name fresh filled;
        same_dist (name ^ " (hit)") fresh hit;
        Alcotest.(check int)
          (name ^ " E(M)")
          (Dist.expectation_ceil fresh)
          (Kernel_cache.expected_feed_throughs ~net_count ~rows)
      done)
    [ 1; 5; 50; 200 ];
  let s = Kernel_cache.stats () in
  Alcotest.(check bool) "hits were recorded" true (s.hits > 0);
  Alcotest.(check bool) "entries resident" true (s.entries > 0);
  Kernel_cache.clear ();
  let cleared = Kernel_cache.stats () in
  Alcotest.(check int) "clear drops entries" 0 cleared.entries;
  Alcotest.(check int) "clear resets hits" 0 cleared.hits

(* The sharded publish-once tables under real contention: four domains
   hammer a shared key plane (every insert raced) plus a private plane
   each (uncontended inserts), checking every returned distribution
   against the uncached reference bit for bit.  Afterwards the flushed
   accounting must add up exactly: every lookup was either a hit or a
   miss, races are a subset of misses, and the tables hold exactly the
   distinct keys touched. *)
let dist_bits_equal a b =
  let bits d =
    List.map (fun o -> Int64.bits_of_float (Dist.prob d o)) (Dist.support d)
  in
  Dist.support a = Dist.support b && bits a = bits b

let test_kernel_cache_hammer () =
  Kernel_cache.clear ();
  let passes = 20 in
  let shared_rows = (2, 9) and shared_degs = (2, 5) in
  let work w () =
    let bad = ref 0 in
    let check model ~rows ~degree =
      let got = Kernel_cache.row_span_dist ~model ~rows ~degree in
      let fresh = Kernel_cache.row_span_dist_uncached ~model ~rows ~degree in
      if not (dist_bits_equal got fresh) then incr bad
    in
    for _pass = 1 to passes do
      (* shared plane: all four domains fight over these keys *)
      for rows = fst shared_rows to snd shared_rows do
        for degree = fst shared_degs to snd shared_degs do
          check Kernel_cache.Paper ~rows ~degree
        done
      done;
      (* private plane: rows disjoint per domain, never contended *)
      for degree = 2 to 8 do
        check Kernel_cache.Exact ~rows:(20 + w) ~degree
      done
    done;
    !bad
  in
  let domains = List.init 4 (fun w -> Domain.spawn (work w)) in
  let bad_counts = List.map Domain.join domains in
  List.iteri
    (fun i bad ->
      Alcotest.(check int)
        (Printf.sprintf "domain %d saw only reference values" i)
        0 bad)
    bad_counts;
  let shared_keys =
    (snd shared_rows - fst shared_rows + 1)
    * (snd shared_degs - fst shared_degs + 1)
  in
  let private_keys = 4 * 7 in
  let lookups = 4 * passes * (shared_keys + private_keys / 4) in
  let s = Kernel_cache.stats () in
  Alcotest.(check int)
    "every lookup was a hit or a miss" lookups (s.hits + s.misses);
  Alcotest.(check bool)
    "misses cover every distinct key" true
    (s.misses >= shared_keys + private_keys);
  Alcotest.(check bool) "races are a subset of misses" true
    (s.races <= s.misses);
  Alcotest.(check int)
    "tables hold exactly the distinct keys" (shared_keys + private_keys)
    s.entries

(* [clear] while four domains keep reading: no crash, no torn value --
   only reference bits ever come back, and once the dust settles a final
   clear leaves empty tables. *)
let test_kernel_cache_clear_under_load () =
  Kernel_cache.clear ();
  let stop = Atomic.make false in
  let reader () =
    let bad = ref 0 in
    while not (Atomic.get stop) do
      for rows = 2 to 8 do
        for degree = 2 to 5 do
          let got =
            Kernel_cache.row_span_dist ~model:Kernel_cache.Paper ~rows ~degree
          in
          let fresh =
            Kernel_cache.row_span_dist_uncached ~model:Kernel_cache.Paper
              ~rows ~degree
          in
          if not (dist_bits_equal got fresh) then incr bad
        done
      done
    done;
    !bad
  in
  let domains = List.init 4 (fun _ -> Domain.spawn reader) in
  for _ = 1 to 100 do
    Kernel_cache.clear ();
    Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  List.iteri
    (fun i bad ->
      Alcotest.(check int)
        (Printf.sprintf "reader %d saw only reference values" i)
        0 (Domain.join bad))
    domains;
  Kernel_cache.clear ();
  let s = Kernel_cache.stats () in
  Alcotest.(check int) "final clear leaves empty tables" 0 s.entries

(* Rng *)

let test_rng_deterministic () =
  let a = S.rng 42 and b = S.rng 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = S.rng 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of bounds: %d" v;
    let f = Rng.uniform r in
    if f < 0. || f >= 1. then Alcotest.failf "uniform out of bounds: %f" f
  done;
  S.raises_invalid (fun () -> Rng.int r 0)

let test_rng_uniformity () =
  let r = S.rng 11 in
  let counts = Array.make 10 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let frac = Float.of_int c /. Float.of_int trials in
      if Float.abs (frac -. 0.1) > 0.01 then
        Alcotest.failf "bucket %d has fraction %f" i frac)
    counts

let test_rng_split_independent () =
  let parent = S.rng 3 in
  let child = Rng.split parent in
  let a = List.init 50 (fun _ -> Rng.int parent 1000) in
  let b = List.init 50 (fun _ -> Rng.int child 1000) in
  Alcotest.(check bool) "streams differ" false (a = b)

let test_rng_shuffle_permutes () =
  let r = S.rng 5 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

(* Dist *)

let test_dist_normalizes () =
  let d = Dist.of_weights [ (1, 2.); (2, 6.) ] in
  S.check_float "P(1)" 0.25 (Dist.prob d 1);
  S.check_float "P(2)" 0.75 (Dist.prob d 2);
  S.check_float "P(3)" 0. (Dist.prob d 3);
  S.check_float "mass error" 0. (Dist.total_mass_error d);
  S.raises_invalid (fun () -> Dist.of_weights []);
  S.raises_invalid (fun () -> Dist.of_weights [ (1, -1.) ]);
  S.raises_invalid (fun () -> Dist.of_weights [ (1, 0.) ])

(* Regression: [of_weights] used to keep duplicate outcomes as separate
   entries, so [prob] (binary search -> first hit) under-reported the
   outcome's mass while [expectation] counted all of it. Duplicates must
   merge at construction. *)
let test_dist_merges_duplicates () =
  let d = Dist.of_weights [ (1, 2.); (2, 6.); (1, 2.) ] in
  Alcotest.(check (list int)) "support deduplicated" [ 1; 2 ] (Dist.support d);
  S.check_float "P(1) = merged mass" 0.4 (Dist.prob d 1);
  S.check_float "P(2)" 0.6 (Dist.prob d 2);
  S.check_float "E consistent with prob" 1.6 (Dist.expectation d);
  S.check_float "mass error" 0. (Dist.total_mass_error d);
  (* merging happens before normalization, so order cannot matter *)
  let d' = Dist.of_weights [ (2, 3.); (1, 2.); (2, 3.); (1, 2.) ] in
  List.iter
    (fun o -> S.check_float (Printf.sprintf "order-free P(%d)" o)
        (Dist.prob d o) (Dist.prob d' o))
    (Dist.support d)

let test_dist_expectation () =
  let d = Dist.of_weights [ (1, 1.); (3, 1.) ] in
  S.check_float "E" 2. (Dist.expectation d);
  Alcotest.(check int) "ceil of exact" 2 (Dist.expectation_ceil d);
  let d2 = Dist.of_weights [ (1, 3.); (2, 1.) ] in
  Alcotest.(check int) "ceil rounds up" 2 (Dist.expectation_ceil d2)

(* Regression: [expectation_ceil] used a fixed 1e-9 slack, which both
   swallowed genuine excesses just above an integer and was too small
   for wide distributions whose accumulated rounding error exceeds it.
   The slack now scales with the distribution's own mass error. *)
let test_dist_expectation_ceil_slack () =
  (* a genuine excess of 4e-10 over 2 must still round up: the fixed
     1e-9 slack used to eat it and return 2 *)
  let d = Dist.of_weights [ (2, 1. -. 4e-10); (3, 4e-10) ] in
  Alcotest.(check int) "tiny real excess rounds up" 3 (Dist.expectation_ceil d);
  (* exact integer expectations must not round up on rounding noise,
     even for distributions with many terms *)
  Alcotest.(check int) "binomial mean 100 * 0.02" 2
    (Dist.expectation_ceil (Dist.binomial ~n:100 ~p:0.02));
  Alcotest.(check int) "binomial mean 400 * 0.25" 100
    (Dist.expectation_ceil (Dist.binomial ~n:400 ~p:0.25));
  Alcotest.(check int) "two-point integer mean" 2
    (Dist.expectation_ceil (Dist.of_weights [ (1, 1.); (3, 1.) ]))

let test_dist_mode_support () =
  let d = Dist.of_weights [ (5, 1.); (2, 3.); (9, 2.) ] in
  Alcotest.(check int) "mode" 2 (Dist.mode d);
  Alcotest.(check (list int)) "support sorted" [ 2; 5; 9 ] (Dist.support d)

let test_binomial () =
  let d = Dist.binomial ~n:10 ~p:0.3 in
  S.check_float ~eps:1e-9 "mean" 3. (Dist.expectation d);
  S.check_float ~eps:1e-9 "mass" 0. (Dist.total_mass_error d);
  S.check_close ~rel:1e-9 "P(0)" (0.7 ** 10.) (Dist.prob d 0);
  let d0 = Dist.binomial ~n:5 ~p:0. in
  S.check_float "degenerate p=0" 1. (Dist.prob d0 0);
  let d1 = Dist.binomial ~n:5 ~p:1. in
  S.check_float "degenerate p=1" 1. (Dist.prob d1 5);
  S.raises_invalid (fun () -> Dist.binomial ~n:3 ~p:1.5)

let test_dist_sampling_matches () =
  let d = Dist.of_weights [ (0, 1.); (1, 2.); (2, 1.) ] in
  let r = S.rng 21 in
  let counts = Array.make 3 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let v = Dist.sample d r in
    counts.(v) <- counts.(v) + 1
  done;
  S.check_close ~rel:0.05 "P(1) sampled" 0.5
    (Float.of_int counts.(1) /. Float.of_int trials)

(* Stats *)

let test_stats_basics () =
  let xs = [ 1.; 2.; 3.; 4. ] in
  S.check_float "mean" 2.5 (Stats.mean xs);
  S.check_float "variance" 1.25 (Stats.variance xs);
  S.check_float "median even" 2.5 (Stats.median xs);
  S.check_float "median odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  let lo, hi = Stats.min_max xs in
  S.check_float "min" 1. lo;
  S.check_float "max" 4. hi;
  S.check_float "mean_abs" 2. (Stats.mean_abs [ -1.; 3.; -2. ]);
  S.check_float "relative_error" 0.5 (Stats.relative_error ~estimated:3. ~real:2.);
  S.raises_invalid (fun () -> Stats.mean []);
  S.raises_invalid (fun () -> Stats.relative_error ~estimated:1. ~real:0.)

let test_wilson_interval () =
  (* symmetric at p-hat = 1/2: known closed-form value for z=1.96, n=100 *)
  let lo, hi = Stats.wilson_interval ~successes:50 ~trials:100 ~z:1.96 in
  S.check_close ~rel:1e-4 "lo at p=0.5" 0.40383 lo;
  S.check_close ~rel:1e-4 "hi at p=0.5" 0.59617 hi;
  (* stays meaningful at the extremes, unlike Wald *)
  let lo0, hi0 = Stats.wilson_interval ~successes:0 ~trials:50 ~z:4. in
  S.check_float "0 successes: lo = 0" 0. lo0;
  Alcotest.(check bool) "0 successes: hi > 0" true (hi0 > 0.);
  let lo1, hi1 = Stats.wilson_interval ~successes:50 ~trials:50 ~z:4. in
  Alcotest.(check bool) "all successes: lo < 1" true (lo1 < 1.);
  S.check_float "all successes: hi = 1" 1. hi1;
  (* wider z, wider interval, always inside [0, 1] *)
  let lo2, hi2 = Stats.wilson_interval ~successes:3 ~trials:10 ~z:1. in
  let lo4, hi4 = Stats.wilson_interval ~successes:3 ~trials:10 ~z:4. in
  Alcotest.(check bool) "z grows the interval" true (lo4 < lo2 && hi4 > hi2);
  Alcotest.(check bool) "clamped" true (lo4 >= 0. && hi4 <= 1.);
  S.raises_invalid (fun () -> Stats.wilson_interval ~successes:1 ~trials:0 ~z:2.);
  S.raises_invalid (fun () -> Stats.wilson_interval ~successes:5 ~trials:4 ~z:2.);
  S.raises_invalid (fun () -> Stats.wilson_interval ~successes:(-1) ~trials:4 ~z:2.);
  S.raises_invalid (fun () -> Stats.wilson_interval ~successes:1 ~trials:4 ~z:0.)

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.; 1.; 2.; 3. ] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 4 total

(* Montecarlo: the paper's "numerical simulation results" *)

let test_montecarlo_span_matches_occupancy () =
  let rows = 4 and degree = 3 and trials = 200_000 in
  let d = Montecarlo.empirical_rows_used ~rng:(S.rng 1) ~trials ~rows ~degree in
  let exact i =
    Comb.choose rows i *. Comb.surjections degree i
    /. Comb.float_pow (Float.of_int rows) degree
  in
  for i = 1 to 3 do
    S.check_close ~rel:0.03
      (Printf.sprintf "P(span=%d)" i)
      (exact i) (Dist.prob d i)
  done

let test_montecarlo_feed_central_max () =
  List.iter
    (fun (rows, degree) ->
      let stats =
        Montecarlo.simulate_net ~rng:(S.rng 2) ~trials:60_000 ~rows ~degree
      in
      let best = Montecarlo.argmax_feed_through stats in
      let central = (rows + 1) / 2 in
      if best <> central && best <> central + 1 then
        Alcotest.failf "rows=%d degree=%d: argmax %d not central" rows degree
          best)
    [ (3, 2); (5, 2); (5, 4); (7, 3); (9, 5); (11, 2) ]

(* Regression: [argmax_feed_through] used a plain [>] scan while
   [Feedthrough.argmax_row] breaks ties toward the lower row with a
   1e-15 tolerance, so on an even row count the two could disagree about
   which central row "wins" on one-ulp noise.  0.1 +. 0.2 exceeds 0.3 by
   one ulp; with the shared tolerance the earlier row must keep the
   title. *)
let test_argmax_feed_through_tie () =
  let stats =
    {
      Montecarlo.rows_used = Dist.of_weights [ (1, 1.) ];
      feed_through = [| 0.1; 0.3; 0.1 +. 0.2; 0.1 |];
    }
  in
  Alcotest.(check int) "one-ulp tie resolves low" 2
    (Montecarlo.argmax_feed_through stats);
  let clear =
    {
      Montecarlo.rows_used = Dist.of_weights [ (1, 1.) ];
      feed_through = [| 0.1; 0.3; 0.4; 0.1 |];
    }
  in
  Alcotest.(check int) "real improvement still wins" 3
    (Montecarlo.argmax_feed_through clear)

let test_simulate_counts_totals () =
  let trials = 5_000 and rows = 5 and degree = 3 in
  let c = Montecarlo.simulate_counts ~rng:(S.rng 9) ~trials ~rows ~degree in
  Alcotest.(check int) "span tallies cover every trial" trials
    (Array.fold_left ( + ) 0 c.span_counts);
  Alcotest.(check int) "span 0 never happens" 0 c.span_counts.(0);
  Array.iter
    (fun k ->
      Alcotest.(check bool) "feed tally within trials" true
        (k >= 0 && k <= trials))
    c.feed_counts;
  (* the normalized view must be exactly the tallies over trials *)
  let stats = Montecarlo.stats_of_counts c in
  Array.iteri
    (fun i k ->
      S.check_float
        (Printf.sprintf "feed freq row %d" (i + 1))
        (Float.of_int k /. Float.of_int trials)
        stats.feed_through.(i))
    c.feed_counts;
  for s = 1 to rows do
    S.check_float
      (Printf.sprintf "span freq %d" s)
      (Float.of_int c.span_counts.(s) /. Float.of_int trials)
      (Dist.prob stats.rows_used s)
  done;
  (* same seed, same stream: simulate_net is the composition *)
  let direct = Montecarlo.simulate_net ~rng:(S.rng 9) ~trials ~rows ~degree in
  Array.iteri
    (fun i p -> S.check_float "simulate_net = composition" p
        direct.feed_through.(i))
    stats.feed_through;
  (* interval helpers agree with Stats.wilson_interval on the tallies *)
  let lo, hi = Montecarlo.feed_interval c ~z:4. ~row:3 in
  let lo', hi' =
    Stats.wilson_interval ~successes:c.feed_counts.(2) ~trials ~z:4.
  in
  S.check_float "feed_interval lo" lo' lo;
  S.check_float "feed_interval hi" hi' hi;
  let slo, shi = Montecarlo.span_interval c ~z:4. ~span:2 in
  let slo', shi' =
    Stats.wilson_interval ~successes:c.span_counts.(2) ~trials ~z:4.
  in
  S.check_float "span_interval lo" slo' slo;
  S.check_float "span_interval hi" shi' shi

let test_montecarlo_validation () =
  S.raises_invalid (fun () ->
      Montecarlo.simulate_net ~rng:(S.rng 1) ~trials:0 ~rows:3 ~degree:2);
  S.raises_invalid (fun () ->
      Montecarlo.simulate_net ~rng:(S.rng 1) ~trials:1 ~rows:0 ~degree:2);
  S.raises_invalid (fun () ->
      Montecarlo.simulate_net ~rng:(S.rng 1) ~trials:1 ~rows:3 ~degree:0)

(* Properties *)

let props =
  let open QCheck2.Gen in
  [
    S.qtest "pascal rule" (pair (int_range 1 40) (int_range 1 39))
      (fun (n, k) ->
        let k = Stdlib.min k (n - 1) in
        if k < 1 then true
        else
          S.approx ~eps:1e-9
            (Comb.choose n k)
            (Comb.choose (n - 1) (k - 1) +. Comb.choose (n - 1) k));
    S.qtest "surjection recurrence" (pair (int_range 1 10) (int_range 1 10))
      (fun (d, i) ->
        if i > d + 1 then true
        else
          S.approx ~eps:1e-9
            (Comb.surjections (d + 1) i)
            (Float.of_int i
            *. (Comb.surjections d i +. Comb.surjections d (i - 1))));
    S.qtest "sum of occupancy counts = n^d"
      (pair (int_range 1 8) (int_range 1 8))
      (fun (n, d) ->
        let total = ref 0. in
        for i = 1 to n do
          total := !total +. (Comb.choose n i *. Comb.surjections d i)
        done;
        S.approx ~eps:1e-9 !total (Comb.float_pow (Float.of_int n) d));
    S.qtest "binomial mean = np" (pair (int_range 0 40) (float_range 0. 1.))
      (fun (n, p) ->
        S.approx ~eps:1e-6
          (Dist.expectation (Dist.binomial ~n ~p))
          (Float.of_int n *. p));
    S.qtest "rng int within bounds" (pair int (int_range 1 1000))
      (fun (seed, bound) ->
        let r = S.rng seed in
        let v = Rng.int r bound in
        v >= 0 && v < bound);
    S.qtest "expectation within support range"
      (list_size (int_range 1 10) (pair (int_range 0 20) (float_range 0.1 5.)))
      (fun weights ->
        match Dist.of_weights weights with
        | d ->
            let e = Dist.expectation d in
            let support = Dist.support d in
            let lo = List.fold_left Stdlib.min max_int support in
            let hi = List.fold_left Stdlib.max min_int support in
            e >= Float.of_int lo -. 1e-9 && e <= Float.of_int hi +. 1e-9
        | exception Invalid_argument _ -> true);
  ]

let () =
  Alcotest.run "prob"
    [
      ( "comb",
        [
          Alcotest.test_case "log_factorial" `Quick test_log_factorial;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "choose exact through word size" `Quick
            test_choose_exact_through_word_size;
          Alcotest.test_case "choose_int" `Quick test_choose_int;
          Alcotest.test_case "surjections" `Quick test_surjections;
          Alcotest.test_case "paper_b = surjections" `Quick
            test_paper_b_matches_surjections;
          Alcotest.test_case "float_pow" `Quick test_float_pow;
          Alcotest.test_case "log_factorial from 4 domains" `Quick
            test_log_factorial_domains;
        ] );
      ( "kernel_cache",
        [
          Alcotest.test_case "sharded cache 4-domain hammer" `Slow
            test_kernel_cache_hammer;
          Alcotest.test_case "clear under concurrent lookups" `Slow
            test_kernel_cache_clear_under_load;
          Alcotest.test_case "cache hit = fresh computation" `Quick
            test_kernel_cache_matches_fresh;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "dist",
        [
          Alcotest.test_case "normalizes" `Quick test_dist_normalizes;
          Alcotest.test_case "merges duplicate outcomes" `Quick
            test_dist_merges_duplicates;
          Alcotest.test_case "expectation" `Quick test_dist_expectation;
          Alcotest.test_case "expectation_ceil slack scales" `Quick
            test_dist_expectation_ceil_slack;
          Alcotest.test_case "mode/support" `Quick test_dist_mode_support;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "sampling" `Quick test_dist_sampling_matches;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "span matches occupancy" `Slow
            test_montecarlo_span_matches_occupancy;
          Alcotest.test_case "central row max" `Slow
            test_montecarlo_feed_central_max;
          Alcotest.test_case "argmax tie resolves low" `Quick
            test_argmax_feed_through_tie;
          Alcotest.test_case "counts and intervals" `Quick
            test_simulate_counts_totals;
          Alcotest.test_case "validation" `Quick test_montecarlo_validation;
        ] );
      ("properties", props);
    ]
