(* The runtime lens: off-is-off guarantees, per-domain pause sketches
   under a multi-domain allocation hammer, exposition labelling, and
   clean cursor teardown across start/stop cycles.

   Test order matters: the "off" group runs first, while this process
   has never started the lens, so it can assert that nothing was
   registered. *)

module Obs = Mae_obs
module Runtime = Mae_obs.Runtime
module Sketch = Mae_obs.Sketch
module Metrics = Mae_obs.Metrics
module Json = Mae_obs.Json

let registry = Mae_tech.Registry.create ()

let random_batch ?(first_seed = 7000) n =
  List.init n (fun i ->
      Mae_workload.Random_circuit.generate
        ~name:(Printf.sprintf "rt%03d" i)
        ~rng:(Mae_prob.Rng.create ~seed:(first_seed + i))
        {
          Mae_workload.Random_circuit.default_params with
          devices = 20 + (i mod 5) * 10;
        })

let digest results =
  List.map
    (function
      | Ok (r : Mae.Driver.module_report) ->
          List.concat_map
            (fun (mr : Mae.Driver.method_result) ->
              match mr.outcome with
              | Ok outcome ->
                  let d = Mae.Methodology.dims outcome in
                  List.map Int64.bits_of_float [ d.area; d.height; d.width ]
              | Error _ -> [])
            r.results
      | Error _ -> [])
    results

let run_batch modules =
  let results, _ =
    Mae_engine.run_circuits_with_stats ~jobs:2 ~registry modules
  in
  results

(* enough churn to overflow the default minor heap many times over *)
let hammer () =
  let junk = ref [] in
  for i = 1 to 300_000 do
    junk := (i, float_of_int i) :: !junk;
    if i mod 10_000 = 0 then junk := []
  done;
  ignore (Sys.opaque_identity !junk);
  Gc.minor ()

let gc_sketches () =
  List.filter
    (fun s -> String.equal (Sketch.name s) "mae_gc_pause_seconds_summary")
    (Sketch.all ())

(* --- off is off --- *)

let test_off_registers_nothing () =
  Alcotest.(check bool) "not running" false (Runtime.running ());
  Alcotest.(check bool)
    "no gc counter registered" true
    (Option.is_none (Metrics.find_counter "mae_gc_minor_collections_total"));
  Alcotest.(check bool)
    "no gc gauge registered" true
    (Option.is_none (Metrics.find_gauge "mae_gc_heap_words"));
  Alcotest.(check bool)
    "no process gauge registered" true
    (Option.is_none (Metrics.find_gauge "mae_process_resident_memory_bytes"));
  Alcotest.(check int) "no pause sketches" 0 (List.length (gc_sketches ()));
  Alcotest.(check int) "poll is a no-op" 0 (Runtime.poll ());
  Alcotest.(check (float 0.)) "no pause attribution" 0.
    (Runtime.pause_seconds_since 0.);
  Alcotest.(check int) "no gc events" 0 (List.length (Runtime.gc_events ()));
  match Json.member "enabled" (Runtime.to_json ()) with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "/runtimez document should say enabled: false"

let test_bit_for_bit () =
  (* telemetry fully off, lens never started in this process yet *)
  Obs.set_enabled false;
  let modules = random_batch 200 in
  let off = digest (run_batch modules) in
  (* now the works: telemetry on, lens running, GC churning *)
  Obs.set_enabled true;
  Alcotest.(check bool) "lens starts" true (Runtime.start ());
  hammer ();
  let on = digest (run_batch modules) in
  Runtime.stop ();
  Obs.set_enabled false;
  Alcotest.(check bool)
    "200-module batch identical with lens on vs off" true (off = on)

(* --- the lens under load --- *)

let test_hammer_populates_sketches () =
  Alcotest.(check bool) "lens starts" true (Runtime.start ());
  let doms = Array.init 4 (fun _ -> Domain.spawn hammer) in
  hammer ();
  Array.iter Domain.join doms;
  ignore (Runtime.poll ());
  Alcotest.(check bool) "pauses observed" true (Runtime.pause_count () > 0);
  (match Runtime.max_pause_seconds () with
  | Some mx -> Alcotest.(check bool) "max pause positive" true (mx > 0.)
  | None -> Alcotest.fail "no max pause");
  Alcotest.(check bool)
    "pooled p50 answers" true
    (Option.is_some (Runtime.pause_quantile 0.5));
  Alcotest.(check bool)
    "gc time attributable to the whole run" true
    (Runtime.pause_seconds_since 0. > 0.);
  let sketches = gc_sketches () in
  Alcotest.(check bool)
    "several per-domain sketches" true
    (List.length sketches >= 2);
  (* labels: every sketch carries exactly one "domain" label and no
     two sketches share it *)
  let labels =
    List.map
      (fun s ->
        match Sketch.labels s with
        | [ ("domain", d) ] -> d
        | other ->
            Alcotest.failf "unexpected labels (%d pairs)" (List.length other))
      sketches
  in
  Alcotest.(check int)
    "per-domain labels disjoint"
    (List.length labels)
    (List.length (List.sort_uniq String.compare labels));
  let ds = Runtime.domains () in
  Alcotest.(check bool) "several domains reported" true (List.length ds >= 2);
  Alcotest.(check bool)
    "minor collections counted" true
    (List.exists (fun d -> d.Runtime.d_minors > 0) ds);
  Alcotest.(check bool)
    "allocation attributed" true
    (List.exists (fun d -> d.Runtime.d_allocated_words > 0) ds);
  Runtime.stop ()

let test_exposition_labels () =
  (* statistics survive stop; the families were registered by the
     earlier starts *)
  let prom = Metrics.to_prometheus () in
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec at i =
      i + nn <= nh
      && (String.equal (String.sub haystack i nn) needle || at (i + 1))
    in
    at 0
  in
  Alcotest.(check bool)
    "labelled summary series exported" true
    (contains prom "mae_gc_pause_seconds_summary{domain=\"");
  Alcotest.(check bool)
    "labelled quantile series exported" true
    (contains prom ",quantile=\"");
  let count_sub sub =
    String.split_on_char '\n' prom
    |> List.filter (fun l -> contains l sub)
    |> List.length
  in
  Alcotest.(check int) "one TYPE line for the family" 1
    (count_sub "# TYPE mae_gc_pause_seconds_summary summary");
  Alcotest.(check int) "one HELP line for the family" 1
    (count_sub "# HELP mae_gc_pause_seconds_summary");
  Alcotest.(check bool)
    "per-domain _count series" true
    (count_sub "mae_gc_pause_seconds_summary_count{domain=\"" >= 2)

let test_double_start_stop () =
  Alcotest.(check bool) "first start" true (Runtime.start ());
  Alcotest.(check bool) "second start is a no-op" false (Runtime.start ());
  Runtime.stop ();
  Runtime.stop ();
  (* double stop must not raise *)
  Alcotest.(check bool) "stopped" false (Runtime.running ());
  Alcotest.(check bool) "restart after stop" true (Runtime.start ());
  hammer ();
  Alcotest.(check bool) "poll sane after restart" true (Runtime.poll () >= 0);
  Runtime.stop ();
  Alcotest.(check bool)
    "statistics readable after teardown" true
    (Runtime.pause_count () > 0)

(* --- /runtimez document and the top parser --- *)

let test_runtimez_roundtrip () =
  Alcotest.(check bool) "lens starts" true (Runtime.start ());
  hammer ();
  ignore (Runtime.poll ());
  let doc = Runtime.to_json () in
  Runtime.stop ();
  (match Json.member "domains" doc with
  | Some (Json.Array (_ :: _)) -> ()
  | _ -> Alcotest.fail "domains array missing or empty");
  (match Option.bind (Json.member "process" doc) (Json.member "uptime_s") with
  | Some (Json.Number up) ->
      Alcotest.(check bool) "uptime positive" true (up > 0.)
  | _ -> Alcotest.fail "process.uptime_s missing");
  (* the serve plane sends exactly this encoding; mae top must read it *)
  match Mae_serve.Top.parse_runtimez (Json.encode doc) with
  | Error e -> Alcotest.failf "top parser rejected /runtimez: %s" e
  | Ok rows ->
      Alcotest.(check int)
        "one row per domain"
        (List.length (Runtime.domains ()))
        (List.length rows);
      Alcotest.(check bool)
        "rows carry pauses" true
        (List.exists (fun r -> r.Mae_serve.Top.rt_pauses > 0) rows)

let () =
  Alcotest.run "runtime lens"
    [
      ( "off",
        [
          Alcotest.test_case "registers nothing, costs one atomic check"
            `Quick test_off_registers_nothing;
          Alcotest.test_case "estimates bit-for-bit identical on/off" `Quick
            test_bit_for_bit;
        ] );
      ( "on",
        [
          Alcotest.test_case "4-domain hammer populates pause sketches"
            `Quick test_hammer_populates_sketches;
          Alcotest.test_case "labelled summary exposition" `Quick
            test_exposition_labels;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "double start/stop teardown clean" `Quick
            test_double_start_stop;
        ] );
      ( "runtimez",
        [
          Alcotest.test_case "document round-trips through mae top" `Quick
            test_runtimez_roundtrip;
        ] );
    ]
