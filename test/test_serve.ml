(* Protocol codec tests: the pure request/response layer of the serve
   plane, exercised entirely with strings -- no sockets, no clocks.

   Covers both wire dialects (line JSON and HTTP/1.1), split-read
   invariance of the incremental decoder, oversize resynchronization
   through [Discard_line], keep-alive negotiation, adversarial headers,
   and the response encoder (Content-Length framing, Connection and
   Retry-After headers, version echo). *)

module P = Mae_serve.Protocol
module Json = Mae_obs.Json
module S = Mae_test_support.Support

let () = Mae_baselines.Methods.ensure_registered ()

(* Small budget so oversize cases stay cheap to build. *)
let max_bytes = 256

let decode ?(max_bytes = max_bytes) st buf = P.decode ~max_bytes st buf

let frame_exn what buf =
  match decode P.initial buf with
  | P.Frame (f, dec, consumed) -> (f, dec, consumed)
  | P.Skip _ -> Alcotest.failf "%s: expected a frame, got Skip" what
  | P.Await -> Alcotest.failf "%s: expected a frame, got Await" what

let request_exn what buf =
  let f, _, _ = frame_exn what buf in
  f.P.request

let estimate_exn what buf =
  match request_exn what buf with
  | P.Estimate e -> e
  | _ -> Alcotest.failf "%s: expected Estimate" what

let invalid_exn what buf =
  match request_exn what buf with
  | P.Invalid { id; error } -> (id, error)
  | _ -> Alcotest.failf "%s: expected Invalid" what

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
  in
  at 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in %S" what needle hay

let obj fields = Json.encode (Json.Object fields)

let est_line ?(id = Json.Number 7.) hdl =
  obj [ ("id", id); ("hdl", Json.String hdl) ]

(* --- line dialect --- *)

let line_basics () =
  let line = est_line "circuit c; end c" in
  let f, dec, consumed = frame_exn "lf line" (line ^ "\n") in
  Alcotest.(check bool) "decoder back to Ready" true (dec = P.Ready);
  Alcotest.(check int) "consumes through newline" (String.length line + 1)
    consumed;
  Alcotest.(check bool) "line framing" true (f.P.framing = P.Line);
  Alcotest.(check int) "frame bytes = line length" (String.length line)
    f.P.bytes;
  (match f.P.request with
  | P.Estimate { id; hdl; methods; sleep_s } ->
      Alcotest.(check bool) "id echoed" true (id = Json.Number 7.);
      Alcotest.(check string) "hdl text" "circuit c; end c" hdl;
      Alcotest.(check bool) "no methods" true (methods = None);
      Alcotest.(check bool) "no sleep_s" true (sleep_s = None)
  | _ -> Alcotest.fail "expected Estimate");
  (* CRLF line endings decode to the same request. *)
  let f2, _, consumed2 = frame_exn "crlf line" (line ^ "\r\n") in
  Alcotest.(check bool) "CRLF stripped" true (f2.P.request = f.P.request);
  Alcotest.(check int) "CRLF consumed" (String.length line + 2) consumed2;
  (* Only the first line is consumed when more bytes follow. *)
  let _, _, consumed3 = frame_exn "pipelined" (line ^ "\n" ^ line ^ "\n") in
  Alcotest.(check int) "stops at first newline" (String.length line + 1)
    consumed3

let line_blank_and_await () =
  (match decode P.initial "\n" with
  | P.Skip (P.Ready, 1) -> ()
  | _ -> Alcotest.fail "blank line should Skip 1 byte");
  (match decode P.initial "\r\n" with
  | P.Skip (P.Ready, 2) -> ()
  | _ -> Alcotest.fail "blank CRLF line should Skip 2 bytes");
  (match decode P.initial "" with
  | P.Await -> ()
  | _ -> Alcotest.fail "empty buffer should Await");
  match decode P.initial "{\"id\": 1" with
  | P.Await -> ()
  | _ -> Alcotest.fail "partial line should Await"

let line_request_errors () =
  let _, err = invalid_exn "bad json" "{nope\n" in
  Alcotest.(check bool) "bad JSON tagged" true
    (has_prefix ~prefix:"bad request JSON:" err);
  let id, err = invalid_exn "missing hdl" (obj [ ("id", Json.Number 3.) ] ^ "\n") in
  Alcotest.(check bool) "id still echoed" true (id = Json.Number 3.);
  Alcotest.(check string) "missing hdl message" "request needs an \"hdl\" field"
    err;
  let _, err =
    invalid_exn "hdl type" (obj [ ("hdl", Json.Number 1.) ] ^ "\n")
  in
  Alcotest.(check string) "hdl type message" "\"hdl\" must be a string" err

let line_methods () =
  let with_methods m =
    obj [ ("hdl", Json.String "x"); ("methods", m) ] ^ "\n"
  in
  let e =
    estimate_exn "methods string" (with_methods (Json.String "gatearray, naive"))
  in
  Alcotest.(check (option (list string))) "string selection"
    (Some [ "gatearray"; "naive" ]) e.P.methods;
  let e =
    estimate_exn "methods array"
      (with_methods
         (Json.Array [ Json.String "gatearray"; Json.String "naive" ]))
  in
  Alcotest.(check (option (list string))) "array selection"
    (Some [ "gatearray"; "naive" ]) e.P.methods;
  let bad what m expect_sub =
    let _, err = invalid_exn what (with_methods m) in
    Alcotest.(check bool) "tagged" true (has_prefix ~prefix:"bad \"methods\":" err);
    check_contains what err expect_sub
  in
  bad "unknown name" (Json.String "gatearray,zzz") "zzz";
  bad "non-string entry" (Json.Array [ Json.Number 1. ]) "must be strings";
  bad "empty array" (Json.Array []) "empty method set";
  bad "wrong type" (Json.Bool true) "must be a string or an array"

let line_sleep_s () =
  let with_sleep s =
    obj [ ("hdl", Json.String "x"); ("sleep_s", s) ] ^ "\n"
  in
  let e = estimate_exn "in range" (with_sleep (Json.Number 0.5)) in
  Alcotest.(check bool) "0.5 accepted" true (e.P.sleep_s = Some 0.5);
  let e = estimate_exn "too long" (with_sleep (Json.Number 10.)) in
  Alcotest.(check bool) "10s rejected" true (e.P.sleep_s = None);
  let e = estimate_exn "negative" (with_sleep (Json.Number (-1.))) in
  Alcotest.(check bool) "negative rejected" true (e.P.sleep_s = None)

let line_oversize_resync () =
  (* An oversized line that already has its newline: answered and the
     decoder stays Ready. *)
  let big = String.make (max_bytes + 1) 'x' in
  let f, dec, consumed = frame_exn "oversize with newline" (big ^ "\n") in
  Alcotest.(check bool) "Too_large" true
    (f.P.request = P.Too_large { limit = max_bytes });
  Alcotest.(check bool) "stays Ready" true (dec = P.Ready);
  Alcotest.(check int) "consumed through newline" (max_bytes + 2) consumed;
  (* Over budget with no newline in sight: answer now, then discard
     until the line finally ends. *)
  let huge = String.make (max_bytes + 10) 'y' in
  let f, dec, consumed = frame_exn "oversize unterminated" huge in
  Alcotest.(check bool) "Too_large (unterminated)" true
    (f.P.request = P.Too_large { limit = max_bytes });
  Alcotest.(check bool) "enters Discard_line" true (dec = P.Discard_line);
  Alcotest.(check int) "consumed all" (String.length huge) consumed;
  (match decode P.Discard_line "still-the-old-line" with
  | P.Skip (P.Discard_line, 18) -> ()
  | _ -> Alcotest.fail "discard should swallow newline-less bytes");
  (match decode P.Discard_line "zz\n" with
  | P.Skip (P.Ready, 3) -> ()
  | _ -> Alcotest.fail "discard should end at the newline");
  (* ...and the next request decodes normally. *)
  let e = estimate_exn "resynced" (est_line "after" ^ "\n") in
  Alcotest.(check string) "post-resync hdl" "after" e.P.hdl

(* Split-read invariance: any prefix of a request line Awaits, and the
   frame decoded from the full buffer is independent of how the bytes
   arrived. *)
let split_read_prop =
  let line = est_line ~id:(Json.Number 42.) "circuit split; end split" in
  let gen = QCheck2.Gen.int_bound (String.length line - 1) in
  S.qtest ~count:100 "line split-read invariance" gen (fun cut ->
      let prefix = String.sub line 0 cut in
      (match decode P.initial prefix with
      | P.Await -> ()
      | _ -> QCheck2.Test.fail_report "prefix must Await");
      match decode P.initial (line ^ "\n") with
      | P.Frame (f, P.Ready, consumed) ->
          consumed = String.length line + 1
          && f.P.request
             = P.Estimate
                 { id = Json.Number 42.; hdl = "circuit split; end split";
                   methods = None; sleep_s = None }
      | _ -> false)

(* --- HTTP dialect --- *)

let http_get () =
  let req = "GET /metrics HTTP/1.1\r\nHost: a\r\n\r\n" in
  let f, dec, consumed = frame_exn "GET" req in
  Alcotest.(check bool) "scrape" true (f.P.request = P.Scrape { path = "/metrics" });
  Alcotest.(check bool) "1.1 keep-alive default" true
    (f.P.framing = P.Http { version = P.V11; keep_alive = true });
  Alcotest.(check bool) "Ready" true (dec = P.Ready);
  Alcotest.(check int) "whole head consumed" (String.length req) consumed;
  (* Query strings are stripped from the scrape path. *)
  let f, _, _ = frame_exn "query" "GET /healthz?verbose=1 HTTP/1.1\r\n\r\n" in
  Alcotest.(check bool) "query stripped" true
    (f.P.request = P.Scrape { path = "/healthz" });
  (* A bare \n\n head terminator is tolerated. *)
  let f, _, _ = frame_exn "lf head" "GET /slo HTTP/1.1\n\n" in
  Alcotest.(check bool) "bare LF terminator" true
    (f.P.request = P.Scrape { path = "/slo" })

let http_keep_alive () =
  let framing_of req =
    let f, _, _ = frame_exn "keep-alive case" req in
    f.P.framing
  in
  let check_ka what req version keep_alive =
    Alcotest.(check bool) what true
      (framing_of req = P.Http { version; keep_alive })
  in
  check_ka "1.1 defaults to keep" "GET / HTTP/1.1\r\n\r\n" P.V11 true;
  check_ka "1.1 + close" "GET / HTTP/1.1\r\nConnection: close\r\n\r\n" P.V11
    false;
  check_ka "header name and value case-insensitive"
    "GET / HTTP/1.1\r\nCONNECTION: Close\r\n\r\n" P.V11 false;
  check_ka "whitespace around value"
    "GET / HTTP/1.1\r\nConnection:   close  \r\n\r\n" P.V11 false;
  check_ka "1.0 defaults to close" "GET / HTTP/1.0\r\n\r\n" P.V10 false;
  check_ka "1.0 + keep-alive" "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
    P.V10 true

let http_post () =
  let body = est_line "circuit h; end h" in
  let post path =
    Printf.sprintf "POST %s HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s" path
      (String.length body) body
  in
  let e = estimate_exn "POST /estimate" (post "/estimate") in
  Alcotest.(check string) "body hdl" "circuit h; end h" e.P.hdl;
  let e = estimate_exn "POST /" (post "/") in
  Alcotest.(check string) "root alias" "circuit h; end h" e.P.hdl;
  (match request_exn "POST elsewhere" (post "/metrics") with
  | P.Malformed { status = 404; error } ->
      check_contains "404 hint" error "try POST /estimate"
  | _ -> Alcotest.fail "POST to a scrape path should be Malformed 404");
  (match
     request_exn "empty body" "POST /estimate HTTP/1.1\r\n\r\n"
   with
  | P.Invalid { error; _ } -> check_contains "needs body" error "Content-Length"
  | _ -> Alcotest.fail "empty POST should be Invalid");
  match request_exn "PUT" "PUT /estimate HTTP/1.1\r\n\r\n" with
  | P.Not_allowed { meth = "PUT" } -> ()
  | _ -> Alcotest.fail "PUT should be Not_allowed"

let http_adversarial () =
  (* A framing error consumes the whole buffer (it cannot be trusted)
     and will close the connection. *)
  let buf = "GET /\r\n\r\ntrailing bytes" in
  (match decode P.initial buf with
  | P.Frame
      ( { P.request = P.Malformed { status = 400; _ };
          framing = P.Http { keep_alive = false; _ }; _ },
        P.Ready, consumed ) ->
      Alcotest.(check int) "poisoned buffer fully consumed"
        (String.length buf) consumed
  | _ -> Alcotest.fail "short request line should be Malformed 400");
  (match
     request_exn "bad length" "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"
   with
  | P.Malformed { status = 400; error = "bad Content-Length" } -> ()
  | _ -> Alcotest.fail "non-numeric Content-Length should be Malformed 400");
  (match
     request_exn "negative length"
       "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
   with
  | P.Malformed { status = 400; _ } -> ()
  | _ -> Alcotest.fail "negative Content-Length should be Malformed 400");
  (* An over-budget body is rejected from the declared length alone --
     before the body arrives -- and the framing closes. *)
  match
    decode P.initial
      (Printf.sprintf "POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n"
         (max_bytes + 1))
  with
  | P.Frame
      ( { P.request = P.Too_large { limit };
          framing = P.Http { keep_alive = false; _ }; _ },
        _, _ ) ->
      Alcotest.(check int) "limit echoed" max_bytes limit
  | _ -> Alcotest.fail "oversized declared body should be Too_large"

let http_split_reads () =
  let body = est_line "circuit s; end s" in
  let req =
    Printf.sprintf "POST /estimate HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
      (String.length body) body
  in
  (* Method prefix: could still become "GET ", so the decoder waits. *)
  (match decode P.initial "PO" with
  | P.Await -> ()
  | _ -> Alcotest.fail "method prefix should Await");
  (* Head not yet terminated. *)
  (match decode P.initial "POST /estimate HTTP/1.1\r\nContent-Le" with
  | P.Await -> ()
  | _ -> Alcotest.fail "partial head should Await");
  (* Head complete, body still in flight. *)
  (match decode P.initial (String.sub req 0 (String.length req - 4)) with
  | P.Await -> ()
  | _ -> Alcotest.fail "partial body should Await");
  let f, _, consumed = frame_exn "complete POST" (req ^ "GET /") in
  Alcotest.(check int) "consumes exactly one request" (String.length req)
    consumed;
  match f.P.request with
  | P.Estimate { hdl = "circuit s; end s"; _ } -> ()
  | _ -> Alcotest.fail "reassembled POST should decode"

(* Every cut point of an HTTP POST either Awaits or never appears;
   the full buffer always yields the same single frame. *)
let http_split_prop =
  let body = est_line ~id:(Json.Number 9.) "circuit p; end p" in
  let req =
    Printf.sprintf "POST /estimate HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
      (String.length body) body
  in
  let gen = QCheck2.Gen.int_bound (String.length req - 1) in
  S.qtest ~count:100 "http split-read invariance" gen (fun cut ->
      (match decode P.initial (String.sub req 0 cut) with
      | P.Await -> ()
      | _ -> QCheck2.Test.fail_report "http prefix must Await");
      match decode P.initial req with
      | P.Frame ({ P.request = P.Estimate { id; _ }; _ }, P.Ready, consumed) ->
          consumed = String.length req && id = Json.Number 9.
      | _ -> false)

(* --- responses --- *)

let encode_line () =
  let doc = Json.Object [ ("ok", Json.Bool true) ] in
  Alcotest.(check string) "line response is body + newline"
    (Json.encode doc ^ "\n")
    (P.encode P.Line (P.json_response doc));
  Alcotest.(check bool) "line framing never closes" false
    (P.will_close P.Line (P.text_response ~status:503 "x"))

let encode_http () =
  let doc = Json.Object [ ("ok", Json.Bool true) ] in
  let body = Json.encode doc ^ "\n" in
  let ka = P.Http { version = P.V11; keep_alive = true } in
  let wire = P.encode ka (P.json_response doc) in
  Alcotest.(check bool) "echoes 1.1" true
    (has_prefix ~prefix:"HTTP/1.1 200 OK\r\n" wire);
  check_contains "content type" wire "Content-Type: application/json\r\n";
  check_contains "content length" wire
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  check_contains "keep-alive header" wire "Connection: keep-alive\r\n";
  Alcotest.(check bool) "body at the end" true
    (String.length wire > String.length body
    && String.sub wire (String.length wire - String.length body)
         (String.length body)
       = body);
  let close = P.Http { version = P.V10; keep_alive = false } in
  let wire10 = P.encode close (P.text_response "hello\n") in
  Alcotest.(check bool) "echoes 1.0" true
    (has_prefix ~prefix:"HTTP/1.0 200 OK\r\n" wire10);
  check_contains "close header" wire10 "Connection: close\r\n";
  check_contains "text content type" wire10 "Content-Type: text/plain\r\n"

let encode_shed_and_close () =
  let ka = P.Http { version = P.V11; keep_alive = true } in
  let shed =
    P.json_response ~status:503 ~retry_after_s:1
      (Json.Object [ ("ok", Json.Bool false) ])
  in
  let wire = P.encode ka shed in
  Alcotest.(check bool) "503 status line" true
    (has_prefix ~prefix:"HTTP/1.1 503 Service Unavailable\r\n" wire);
  check_contains "retry-after header" wire "Retry-After: 1\r\n";
  Alcotest.(check bool) "shed keeps the connection" false (P.will_close ka shed);
  (* 413 poisons framing: closes even under keep-alive, and says so. *)
  let too_large = P.text_response ~status:413 "too big\n" in
  Alcotest.(check bool) "413 closes" true (P.will_close ka too_large);
  check_contains "413 close header" (P.encode ka too_large)
    "Connection: close\r\n"

let status_texts () =
  let cases =
    [ (200, "200 OK"); (400, "400 Bad Request"); (404, "404 Not Found");
      (405, "405 Method Not Allowed"); (413, "413 Content Too Large");
      (500, "500 Internal Server Error"); (503, "503 Service Unavailable");
      (418, "418 Status") ]
  in
  List.iter
    (fun (code, text) ->
      Alcotest.(check string) (string_of_int code) text (P.status_text code))
    cases

(* Request documents round-trip: encode an estimate as line JSON,
   decode it, and the id and hdl come back intact. *)
let roundtrip_prop =
  let gen =
    QCheck2.Gen.(pair (int_bound 1_000_000) (string_size ~gen:printable (1 -- 40)))
  in
  S.qtest ~count:200 "request round-trip" gen (fun (id, hdl) ->
      let hdl = String.map (fun c -> if c = '\n' then ' ' else c) hdl in
      let line = est_line ~id:(Json.Number (float_of_int id)) hdl in
      QCheck2.assume (String.length line <= max_bytes);
      match decode P.initial (line ^ "\n") with
      | P.Frame ({ P.request = P.Estimate e; _ }, _, _) ->
          e.P.id = Json.Number (float_of_int id) && e.P.hdl = hdl
      | _ -> false)

let () =
  Alcotest.run "serve"
    [ ( "protocol-line",
        [ Alcotest.test_case "basics" `Quick line_basics;
          Alcotest.test_case "blank lines and partial reads" `Quick
            line_blank_and_await;
          Alcotest.test_case "request errors" `Quick line_request_errors;
          Alcotest.test_case "methods field" `Quick line_methods;
          Alcotest.test_case "sleep_s field" `Quick line_sleep_s;
          Alcotest.test_case "oversize resync" `Quick line_oversize_resync ] );
      ( "protocol-http",
        [ Alcotest.test_case "GET scrapes" `Quick http_get;
          Alcotest.test_case "keep-alive negotiation" `Quick http_keep_alive;
          Alcotest.test_case "POST estimates" `Quick http_post;
          Alcotest.test_case "adversarial headers" `Quick http_adversarial;
          Alcotest.test_case "split reads" `Quick http_split_reads ] );
      ( "protocol-encode",
        [ Alcotest.test_case "line responses" `Quick encode_line;
          Alcotest.test_case "http responses" `Quick encode_http;
          Alcotest.test_case "shed and close semantics" `Quick
            encode_shed_and_close;
          Alcotest.test_case "status texts" `Quick status_texts ] );
      ( "protocol-props",
        [ split_read_prop; http_split_prop; roundtrip_prop ] ) ]
